//! The `.litmus` text front-end.
//!
//! A small surface syntax for litmus tests so that new scenarios are data,
//! not Rust: shared-variable declarations with initial values, abstract
//! objects, threads written in the Figure-4 statement language with
//! `rel`/`acq` annotations, an `observe` tuple and an exact `expected`
//! outcome-set block. Parsing compiles directly onto the existing
//! [`ProgramBuilder`](crate::builder::ProgramBuilder)/[`Program`] types, so
//! a parsed test runs through exactly the same pipeline as a builder-built
//! one (the corpus round-trip suite holds the two to identical verdicts).
//!
//! # Grammar
//!
//! ```text
//! litmus "NAME"                      // required header
//! about  "free-text description"     // optional
//!
//! var x = 0                          // client shared variable + init
//! libvar y = 0                       // library shared variable + init
//! lock l   / stack s / queue q       // abstract objects
//! register g / counter c
//!
//! thread T1 {                        // threads in program order
//!   x = 1;                           //   relaxed write
//!   y =rel 2;                        //   release write
//!   r1 = x;                          //   relaxed read (rhs is a shared var)
//!   r2 =acq y;                       //   acquire read
//!   r3 = r1 + 1;                     //   local assignment (rhs is local)
//!   r4 = cas(x, 0, 1);              //   RA compare-and-swap (bool result)
//!   r5 = fai(x);                     //   RA fetch-and-increment (old value)
//!   s.push(1);  r6 = s.pop();        //   object methods; `_rel`/`_acq`
//!   if (r1 == 1) { ... } else { ... }
//!   while (r3 != 0) { ... }
//!   do { ... } until (r6 != empty);
//! }
//!
//! observe T1.r1 T1.r2                // the outcome tuple, in order
//! expected {                         // the exact admissible outcome set
//!   (0, 0) (1, 2)
//! }
//! ```
//!
//! Comments run `//` to end of line. Registers are implicitly declared per
//! thread at their first use as an assignment target and are initialised to
//! `⊥`; using a name that is neither a declared shared variable nor an
//! already-assigned register is an error. All errors carry the 1-based
//! line/column where they were detected.

use crate::ast::{BinOp, Com, Exp, Method, ObjRef, Reg, UnOp, VarRef};
use crate::builder::{ProgramBuilder, ThreadBuilder};
use crate::program::{ObjKind, Program};
use rc11_core::Val;
use std::collections::BTreeSet;
use std::fmt;

/// A source position: 1-based line and column (`0:0` when unknown, e.g.
/// the default [`LintInfo`] before the `expected` block is reached).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parse error: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Where the error was detected.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A successfully parsed litmus test: the program plus its observation
/// tuple and exact expected outcome set.
#[derive(Debug, Clone)]
pub struct ParsedLitmus {
    /// Test name (the `litmus "…"` header).
    pub name: String,
    /// Free-text description (the optional `about "…"` line; empty if
    /// absent).
    pub about: String,
    /// The compiled program.
    pub prog: Program,
    /// The observation tuple: `(thread index, register)` in declaration
    /// order of the `observe` line.
    pub observe: Vec<(usize, Reg)>,
    /// Display names for the observation tuple (`(thread, register)`).
    pub observe_names: Vec<(String, String)>,
    /// The exact admissible outcome set, one `Vec<Val>` per tuple.
    pub expected: BTreeSet<Vec<Val>>,
    /// Source facts collected for the lint pass (rc11-analyze).
    pub lint: LintInfo,
}

/// Source-position facts the parser records as it goes, so the lint pass
/// (which works over the assembled [`Program`], where spans no longer
/// exist) can point its diagnostics at the offending source location.
#[derive(Debug, Clone, Default)]
pub struct LintInfo {
    /// Every declared shared variable: its reference, name and the span of
    /// the declaration, in declaration order.
    pub vars: Vec<(VarRef, String, Span)>,
    /// Per-thread names, declaration spans and register tables.
    pub threads: Vec<ThreadLintInfo>,
    /// One span per `while`/`do` loop, recorded at the keyword in source
    /// order — i.e. in pre-order of the assembled `Com` trees, threads in
    /// declaration order (the order [`Com::visit`] yields the loop nodes).
    pub loop_spans: Vec<Span>,
    /// First statement of each block that follows a `while (true) { … }`.
    pub unreachable: Vec<Span>,
    /// One span per `observe` entry, parallel to `ParsedLitmus::observe`.
    pub observe_spans: Vec<Span>,
    /// The span of the `expected` block.
    pub expected_span: Span,
    /// Rule names from `// lint: allow(rule, …)` comments in the source.
    pub allows: Vec<String>,
}

/// Lint facts for one thread.
#[derive(Debug, Clone)]
pub struct ThreadLintInfo {
    /// Thread name.
    pub name: String,
    /// Span of the thread declaration.
    pub span: Span,
    /// Register names and first-use spans, in allocation order (index `i`
    /// is `Reg(i)`).
    pub regs: Vec<(String, Span)>,
}

/// Parse one `.litmus` source text.
pub fn parse_litmus(src: &str) -> Result<ParsedLitmus, ParseError> {
    let toks = Lexer::new(src).lex()?;
    let parser = Parser {
        toks,
        pos: 0,
        decls: Vec::new(),
        threads: Vec::new(),
        lint: LintInfo { allows: scan_allows(src), ..LintInfo::default() },
    };
    parser.parse()
}

/// Evaluate a register-free expression to a boolean, if it is one — the
/// constant-guard oracle shared by the parser's unreachable-code tracking
/// and the lint pass.
pub fn const_bool(e: &Exp) -> Option<bool> {
    let mut regs = Vec::new();
    e.regs(&mut regs);
    if !regs.is_empty() {
        return None;
    }
    match e.eval(&[]) {
        Ok(Val::Bool(b)) => Some(b),
        _ => None,
    }
}

/// Collect rule names from `// lint: allow(rule, …)` comments. Comments
/// are invisible to the lexer, so the directive is read off the raw text.
fn scan_allows(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in src.lines() {
        let Some(comment) = line.split_once("//").map(|(_, c)| c) else { continue };
        let Some(rest) = comment.trim().strip_prefix("lint:") else { continue };
        let Some(args) = rest.trim().strip_prefix("allow(").and_then(|r| r.split(')').next())
        else {
            continue;
        };
        for rule in args.split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push(rule.to_string());
            }
        }
    }
    out
}

/// Print a value in the form the `expected { … }` block parses back —
/// the printer dual of the value-literal grammar, used by everything that
/// emits `.litmus` text (the fuzz repro printer, `rc11 run
/// --show-outcomes`) so printer and parser cannot drift apart.
pub fn val_literal(v: &Val) -> String {
    match v {
        Val::Int(n) => n.to_string(),
        Val::Bool(b) => b.to_string(),
        Val::Empty => "empty".to_string(),
        Val::Bot => "bot".to_string(),
    }
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    /// `=`
    Assign,
    /// `=rel`
    AssignRel,
    /// `=acq`
    AssignAcq,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Dot,
    Plus,
    Minus,
    Star,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Assign => write!(f, "`=`"),
            Tok::AssignRel => write!(f, "`=rel`"),
            Tok::AssignAcq => write!(f, "`=acq`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().peekable(), line: 1, col: 1 }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn err(&self, span: Span, msg: impl Into<String>) -> ParseError {
        ParseError { msg: msg.into(), span }
    }

    fn span(&self) -> Span {
        Span { line: self.line, col: self.col }
    }

    fn ident(&mut self, first: char) -> String {
        let mut s = String::new();
        s.push(first);
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    /// Tokenise the whole input.
    fn lex(mut self) -> Result<Vec<(Tok, Span)>, ParseError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and `//` comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('/') => {
                        let span = self.span();
                        self.bump();
                        if self.peek() == Some('/') {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        } else {
                            return Err(self.err(span, "unexpected character `/`"));
                        }
                    }
                    _ => break,
                }
            }
            let span = self.span();
            let Some(c) = self.bump() else {
                out.push((Tok::Eof, span));
                return Ok(out);
            };
            let tok = match c {
                '(' => Tok::LParen,
                ')' => Tok::RParen,
                '{' => Tok::LBrace,
                '}' => Tok::RBrace,
                ',' => Tok::Comma,
                ';' => Tok::Semi,
                '.' => Tok::Dot,
                '+' => Tok::Plus,
                '-' => Tok::Minus,
                '*' => Tok::Star,
                '%' => Tok::Percent,
                '=' => match self.peek() {
                    Some('=') => {
                        self.bump();
                        Tok::EqEq
                    }
                    // An annotation glued to the `=`: `=rel` / `=acq`.
                    // Other identifiers glued to `=` are ordinary
                    // assignments (`r1=x;`) — except annotation-like names
                    // from other memory models (`=rlx`, `=sc`, …), which
                    // get the targeted diagnostic instead of a confusing
                    // undeclared-identifier error downstream.
                    Some(a) if a.is_ascii_alphabetic() => {
                        let ident_span = self.span();
                        let first = self.bump().unwrap();
                        let ann = self.ident(first);
                        match ann.as_str() {
                            "rel" => Tok::AssignRel,
                            "acq" => Tok::AssignAcq,
                            "rlx" | "sc" | "con" | "acqrel" | "acq_rel" | "relacq" | "rel_acq" => {
                                return Err(self.err(
                                    span,
                                    format!(
                                        "unknown access annotation `={ann}` \
                                         (expected `=rel` or `=acq`)"
                                    ),
                                ))
                            }
                            _ => {
                                // `r1=x`: an assignment with no space —
                                // emit both tokens and move on.
                                out.push((Tok::Assign, span));
                                out.push((Tok::Ident(ann), ident_span));
                                continue;
                            }
                        }
                    }
                    _ => Tok::Assign,
                },
                '!' => {
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::NotEq
                    } else {
                        Tok::Bang
                    }
                }
                '<' => {
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                '>' => {
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                '&' => {
                    if self.peek() == Some('&') {
                        self.bump();
                        Tok::AndAnd
                    } else {
                        return Err(self.err(span, "unexpected character `&` (did you mean `&&`?)"));
                    }
                }
                '|' => {
                    if self.peek() == Some('|') {
                        self.bump();
                        Tok::OrOr
                    } else {
                        return Err(self.err(span, "unexpected character `|` (did you mean `||`?)"));
                    }
                }
                '"' => {
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some('"') => break,
                            Some('\n') | None => {
                                return Err(self.err(span, "unterminated string literal"))
                            }
                            Some(c) => s.push(c),
                        }
                    }
                    Tok::Str(s)
                }
                c if c.is_ascii_digit() => {
                    let mut n = String::new();
                    n.push(c);
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            n.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let v: i64 = n
                        .parse()
                        .map_err(|_| self.err(span, format!("integer literal `{n}` overflows")))?;
                    Tok::Int(v)
                }
                c if c.is_ascii_alphabetic() || c == '_' => Tok::Ident(self.ident(c)),
                other => return Err(self.err(span, format!("unexpected character `{other}`"))),
            };
            out.push((tok, span));
        }
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// What a top-level identifier resolves to.
#[derive(Debug, Clone, Copy)]
enum Decl {
    Var(VarRef),
    Obj(ObjRef, ObjKind),
}

/// Per-thread parsing state: register names in allocation order.
struct ThreadCtx {
    name: String,
    span: Span,
    tb: ThreadBuilder,
    regs: Vec<(String, Span)>,
}

impl ThreadCtx {
    /// Resolve a register name, or `None` if never assigned.
    fn lookup(&self, name: &str) -> Option<Reg> {
        self.regs.iter().position(|(r, _)| r == name).map(|i| Reg(i as u16))
    }

    /// Resolve a register name as an assignment target, declaring it on
    /// first use (initialised to `⊥`).
    fn target(&mut self, name: &str, span: Span) -> Reg {
        match self.lookup(name) {
            Some(r) => r,
            None => {
                let r = self.tb.reg(name);
                self.regs.push((name.to_string(), span));
                r
            }
        }
    }
}

struct Parser {
    toks: Vec<(Tok, Span)>,
    pos: usize,
    decls: Vec<(String, Decl)>,
    threads: Vec<ThreadCtx>,
    lint: LintInfo,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn span(&self) -> Span {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> (Tok, Span) {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, span: Span, msg: impl Into<String>) -> ParseError {
        ParseError { msg: msg.into(), span }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Span, ParseError> {
        let span = self.span();
        if self.peek() == want {
            self.bump();
            Ok(span)
        } else {
            Err(self.err(span, format!("expected {want} {what}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        let span = self.span();
        match self.bump().0 {
            Tok::Ident(s) => Ok((s, span)),
            other => Err(self.err(span, format!("expected {what}, found {other}"))),
        }
    }

    /// Accept a keyword (a specific identifier).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn lookup_decl(&self, name: &str) -> Option<Decl> {
        self.decls.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    fn parse(mut self) -> Result<ParsedLitmus, ParseError> {
        // Header.
        if !self.eat_kw("litmus") {
            return Err(self.err(self.span(), "a litmus file must start with `litmus \"name\"`"));
        }
        let name = match self.bump() {
            (Tok::Str(s), _) => s,
            (other, span) => {
                return Err(self.err(span, format!("expected the test name string, found {other}")))
            }
        };
        let mut about = String::new();
        if self.eat_kw("about") {
            about = match self.bump() {
                (Tok::Str(s), _) => s,
                (other, span) => {
                    return Err(
                        self.err(span, format!("expected the about string, found {other}"))
                    )
                }
            };
        }

        let mut pb = ProgramBuilder::new(name.clone());

        // Declarations and threads.
        let mut bodies: Vec<Com> = Vec::new();
        loop {
            let span = self.span();
            match self.peek().clone() {
                Tok::Ident(kw) if kw == "var" || kw == "libvar" => {
                    self.bump();
                    let (vname, vspan) = self.expect_ident("a variable name")?;
                    self.check_fresh(&vname, vspan)?;
                    self.expect(&Tok::Assign, "after the variable name")?;
                    let init = self.parse_int_literal("as the initial value")?;
                    let var = if kw == "var" {
                        pb.client_var(&vname, init)
                    } else {
                        pb.lib_var(&vname, init)
                    };
                    self.lint.vars.push((var, vname.clone(), vspan));
                    self.decls.push((vname, Decl::Var(var)));
                }
                Tok::Ident(kw)
                    if matches!(
                        kw.as_str(),
                        "lock" | "stack" | "queue" | "register" | "counter"
                    ) =>
                {
                    self.bump();
                    let kind = match kw.as_str() {
                        "lock" => ObjKind::Lock,
                        "stack" => ObjKind::Stack,
                        "queue" => ObjKind::Queue,
                        "register" => ObjKind::Register,
                        _ => ObjKind::Counter,
                    };
                    let (oname, ospan) = self.expect_ident("an object name")?;
                    self.check_fresh(&oname, ospan)?;
                    let obj = pb.object(&oname, kind);
                    self.decls.push((oname, Decl::Obj(obj, kind)));
                }
                Tok::Ident(kw) if kw == "thread" => {
                    self.bump();
                    let (tname, tspan) = self.expect_ident("a thread name")?;
                    if self.threads.iter().any(|t| t.name == tname) {
                        return Err(
                            self.err(tspan, format!("duplicate thread name `{tname}`"))
                        );
                    }
                    self.threads.push(ThreadCtx {
                        name: tname,
                        span: tspan,
                        tb: ThreadBuilder::new(),
                        regs: Vec::new(),
                    });
                    self.expect(&Tok::LBrace, "to open the thread body")?;
                    let ti = self.threads.len() - 1;
                    let body = self.parse_stmts(ti)?;
                    self.expect(&Tok::RBrace, "to close the thread body")?;
                    bodies.push(body);
                }
                Tok::Ident(kw) if kw == "observe" => break,
                Tok::Ident(kw) if kw == "expected" => {
                    return Err(self.err(
                        span,
                        "`expected` must come after an `observe` line naming the outcome tuple",
                    ))
                }
                other => {
                    return Err(self.err(
                        span,
                        format!(
                            "expected a declaration (`var`, `lock`, `stack`, `queue`, \
                             `register`, `counter`), `thread`, or `observe`, found {other}"
                        ),
                    ))
                }
            }
        }

        if self.threads.is_empty() {
            return Err(self.err(self.span(), "a litmus test needs at least one `thread`"));
        }

        // `observe T.r ...`
        if !self.eat_kw("observe") {
            return Err(self.err(self.span(), "expected `observe`"));
        }
        let mut observe: Vec<(usize, Reg)> = Vec::new();
        let mut observe_names: Vec<(String, String)> = Vec::new();
        loop {
            match self.peek() {
                Tok::Ident(s) if s != "expected" => {
                    let (tname, tspan) = self.expect_ident("a thread name")?;
                    let Some(ti) = self.threads.iter().position(|t| t.name == tname) else {
                        return Err(self.err(tspan, format!("unknown thread `{tname}` in observe")));
                    };
                    self.expect(&Tok::Dot, "between thread and register")?;
                    let (rname, rspan) = self.expect_ident("a register name")?;
                    let Some(reg) = self.threads[ti].lookup(&rname) else {
                        return Err(self.err(
                            rspan,
                            format!("thread `{tname}` has no register `{rname}`"),
                        ));
                    };
                    observe.push((ti, reg));
                    observe_names.push((tname, rname));
                    self.lint.observe_spans.push(tspan);
                    // Optional separating comma.
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        if observe.is_empty() {
            return Err(self.err(self.span(), "`observe` names at least one `thread.register`"));
        }

        // `expected { (v, …) … }`
        self.lint.expected_span = self.span();
        if !self.eat_kw("expected") {
            return Err(self.err(self.span(), "expected the `expected { … }` block"));
        }
        self.expect(&Tok::LBrace, "to open the expected outcome set")?;
        let mut expected: BTreeSet<Vec<Val>> = BTreeSet::new();
        while self.peek() != &Tok::RBrace {
            let tspan = self.expect(&Tok::LParen, "to open an outcome tuple")?;
            let mut tuple = Vec::new();
            loop {
                tuple.push(self.parse_val_literal()?);
                match self.bump() {
                    (Tok::Comma, _) => continue,
                    (Tok::RParen, _) => break,
                    (other, span) => {
                        return Err(
                            self.err(span, format!("expected `,` or `)` in outcome tuple, found {other}"))
                        )
                    }
                }
            }
            if tuple.len() != observe.len() {
                return Err(self.err(
                    tspan,
                    format!(
                        "outcome tuple has {} values but `observe` names {} registers",
                        tuple.len(),
                        observe.len()
                    ),
                ));
            }
            expected.insert(tuple);
            if self.peek() == &Tok::Comma {
                self.bump();
            }
        }
        self.expect(&Tok::RBrace, "to close the expected outcome set")?;
        if self.peek() != &Tok::Eof {
            return Err(self.err(
                self.span(),
                format!("trailing input after the expected block: {}", self.peek()),
            ));
        }

        // Assemble the program.
        for (ctx, body) in self.threads.drain(..).zip(bodies) {
            self.lint.threads.push(ThreadLintInfo {
                name: ctx.name.clone(),
                span: ctx.span,
                regs: ctx.regs.clone(),
            });
            pb.add_thread(ctx.tb, body);
        }
        let prog = pb.build();
        if let Err(e) = prog.validate() {
            return Err(ParseError { msg: e, span: Span { line: 1, col: 1 } });
        }
        Ok(ParsedLitmus { name, about, prog, observe, observe_names, expected, lint: self.lint })
    }

    fn check_fresh(&self, name: &str, span: Span) -> Result<(), ParseError> {
        if self.lookup_decl(name).is_some() {
            return Err(self.err(span, format!("duplicate declaration of `{name}`")));
        }
        Ok(())
    }

    fn parse_int_literal(&mut self, what: &str) -> Result<i64, ParseError> {
        let neg = if self.peek() == &Tok::Minus {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            (Tok::Int(n), _) => Ok(if neg { -n } else { n }),
            (other, span) => Err(self.err(span, format!("expected an integer {what}, found {other}"))),
        }
    }

    fn parse_val_literal(&mut self) -> Result<Val, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let span = self.span();
                self.bump();
                match s.as_str() {
                    "true" => Ok(Val::Bool(true)),
                    "false" => Ok(Val::Bool(false)),
                    "empty" => Ok(Val::Empty),
                    "bot" => Ok(Val::Bot),
                    other => Err(self.err(
                        span,
                        format!(
                            "expected a value (integer, `true`, `false`, `empty`, `bot`), \
                             found `{other}`"
                        ),
                    )),
                }
            }
            _ => Ok(Val::Int(self.parse_int_literal("value")?)),
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn parse_stmts(&mut self, ti: usize) -> Result<Com, ParseError> {
        let mut out = Com::Skip;
        // Statements after a `while (true) { … }` can never run (the
        // language has no `break`); flag the first one per block.
        let mut diverged = false;
        let mut flagged = false;
        while self.peek() != &Tok::RBrace && self.peek() != &Tok::Eof {
            let span = self.span();
            if diverged && !flagged {
                self.lint.unreachable.push(span);
                flagged = true;
            }
            let s = self.parse_stmt(ti)?;
            if let Com::While { cond, .. } = &s {
                diverged = diverged || const_bool(cond) == Some(true);
            }
            out = out.then(s);
        }
        Ok(out)
    }

    fn parse_block(&mut self, ti: usize) -> Result<Com, ParseError> {
        self.expect(&Tok::LBrace, "to open a block")?;
        let body = self.parse_stmts(ti)?;
        self.expect(&Tok::RBrace, "to close a block")?;
        Ok(body)
    }

    fn parse_stmt(&mut self, ti: usize) -> Result<Com, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.expect(&Tok::LParen, "to open the condition")?;
                let cond = self.parse_exp(ti)?;
                self.expect(&Tok::RParen, "to close the condition")?;
                let then_ = self.parse_block(ti)?;
                let else_ = if self.eat_kw("else") { self.parse_block(ti)? } else { Com::Skip };
                Ok(Com::If { cond, then_: Box::new(then_), else_: Box::new(else_) })
            }
            Tok::Ident(kw) if kw == "while" => {
                self.bump();
                self.lint.loop_spans.push(span);
                self.expect(&Tok::LParen, "to open the condition")?;
                let cond = self.parse_exp(ti)?;
                self.expect(&Tok::RParen, "to close the condition")?;
                let body = self.parse_block(ti)?;
                Ok(Com::While { cond, body: Box::new(body) })
            }
            Tok::Ident(kw) if kw == "do" => {
                self.bump();
                self.lint.loop_spans.push(span);
                let body = self.parse_block(ti)?;
                if !self.eat_kw("until") {
                    return Err(self.err(self.span(), "expected `until` after a `do` block"));
                }
                self.expect(&Tok::LParen, "to open the until-condition")?;
                let cond = self.parse_exp(ti)?;
                self.expect(&Tok::RParen, "to close the until-condition")?;
                self.expect(&Tok::Semi, "after `do … until (…)`")?;
                Ok(Com::DoUntil { body: Box::new(body), cond })
            }
            Tok::Ident(kw) if kw == "skip" => {
                self.bump();
                self.expect(&Tok::Semi, "after `skip`")?;
                Ok(Com::Skip)
            }
            Tok::Ident(name) => {
                // `name.method(...)` | `name = …` | `name =rel …` | `name =acq …`
                if self.peek2() == &Tok::Dot {
                    let stmt = self.parse_method_call(ti, None)?;
                    self.expect(&Tok::Semi, "after a method call")?;
                    return Ok(stmt);
                }
                self.bump();
                match self.bump() {
                    (Tok::AssignRel, _) => {
                        // Release write: LHS must be a shared variable.
                        let var = self.resolve_var(&name, span)?;
                        let exp = self.parse_exp(ti)?;
                        self.expect(&Tok::Semi, "after a write")?;
                        Ok(Com::Write { var, exp, rel: true })
                    }
                    (Tok::AssignAcq, aspan) => {
                        // Acquire read: LHS register, RHS shared variable.
                        let (vname, vspan) = self.expect_ident("a shared variable to read")?;
                        let var = self.resolve_var(&vname, vspan)?;
                        if self.lookup_decl(&name).is_some() {
                            return Err(self.err(
                                aspan,
                                format!("`{name}` is a shared location, not a register"),
                            ));
                        }
                        let reg = self.threads[ti].target(&name, span);
                        self.expect(&Tok::Semi, "after a read")?;
                        Ok(Com::Read { reg, var, acq: true })
                    }
                    (Tok::Assign, _) => self.parse_assign_rhs(ti, name, span),
                    (other, ospan) => Err(self.err(
                        ospan,
                        format!("expected `=`, `=rel`, `=acq` or `.` after `{name}`, found {other}"),
                    )),
                }
            }
            other => Err(self.err(span, format!("expected a statement, found {other}"))),
        }
    }

    /// After `name =`: write (if `name` is a var), or read / CAS / FAI /
    /// method-with-result / local assignment (if `name` is a register).
    fn parse_assign_rhs(&mut self, ti: usize, name: String, span: Span) -> Result<Com, ParseError> {
        match self.lookup_decl(&name) {
            Some(Decl::Var(var)) => {
                let exp = self.parse_exp(ti)?;
                self.expect(&Tok::Semi, "after a write")?;
                Ok(Com::Write { var, exp, rel: false })
            }
            Some(Decl::Obj(..)) => {
                Err(self.err(span, format!("object `{name}` cannot be assigned; call a method on it")))
            }
            None => {
                // Destination is a register.
                match self.peek().clone() {
                    // `r = cas(x, u, v);`
                    Tok::Ident(kw) if kw == "cas" && self.peek2() == &Tok::LParen => {
                        self.bump();
                        self.bump();
                        let (vname, vspan) = self.expect_ident("the CAS target variable")?;
                        let var = self.resolve_var(&vname, vspan)?;
                        self.expect(&Tok::Comma, "after the CAS target")?;
                        let expect = self.parse_exp(ti)?;
                        self.expect(&Tok::Comma, "after the CAS expected value")?;
                        let new = self.parse_exp(ti)?;
                        self.expect(&Tok::RParen, "to close the CAS")?;
                        self.expect(&Tok::Semi, "after a CAS")?;
                        let reg = self.threads[ti].target(&name, span);
                        Ok(Com::Cas { reg, var, expect, new })
                    }
                    // `r = fai(x);`
                    Tok::Ident(kw) if kw == "fai" && self.peek2() == &Tok::LParen => {
                        self.bump();
                        self.bump();
                        let (vname, vspan) = self.expect_ident("the FAI target variable")?;
                        let var = self.resolve_var(&vname, vspan)?;
                        self.expect(&Tok::RParen, "to close the FAI")?;
                        self.expect(&Tok::Semi, "after a FAI")?;
                        let reg = self.threads[ti].target(&name, span);
                        Ok(Com::Fai { reg, var })
                    }
                    // `r = obj.method(...);`
                    Tok::Ident(oname)
                        if self.peek2() == &Tok::Dot
                            && matches!(self.lookup_decl(&oname), Some(Decl::Obj(..))) =>
                    {
                        let stmt = self.parse_method_call(ti, Some((name, span)))?;
                        self.expect(&Tok::Semi, "after a method call")?;
                        Ok(stmt)
                    }
                    // `r = x;` — a read if `x` is a declared variable.
                    Tok::Ident(vname)
                        if matches!(self.lookup_decl(&vname), Some(Decl::Var(_)))
                            && matches!(
                                self.peek2(),
                                Tok::Semi
                            ) =>
                    {
                        self.bump();
                        let var = self.resolve_var(&vname, span).unwrap();
                        self.bump(); // the semicolon
                        let reg = self.threads[ti].target(&name, span);
                        Ok(Com::Read { reg, var, acq: false })
                    }
                    // Otherwise: a local assignment over registers.
                    _ => {
                        let exp = self.parse_exp(ti)?;
                        self.expect(&Tok::Semi, "after an assignment")?;
                        let reg = self.threads[ti].target(&name, span);
                        Ok(Com::Assign(reg, exp))
                    }
                }
            }
        }
    }

    /// `obj.method(args)` with an optional result register.
    fn parse_method_call(
        &mut self,
        ti: usize,
        result: Option<(String, Span)>,
    ) -> Result<Com, ParseError> {
        let (oname, ospan) = self.expect_ident("an object name")?;
        let (obj, kind) = match self.lookup_decl(&oname) {
            Some(Decl::Obj(o, k)) => (o, k),
            Some(Decl::Var(_)) => {
                return Err(self.err(ospan, format!("`{oname}` is a variable, not an object")))
            }
            None => return Err(self.err(ospan, format!("undeclared object `{oname}`"))),
        };
        self.expect(&Tok::Dot, "after the object name")?;
        let (mname, mspan) = self.expect_ident("a method name")?;
        // Method table: name → (method, sync, needs_arg, has_result).
        let (method, sync, needs_arg, has_result) = match (kind, mname.as_str()) {
            (ObjKind::Lock, "acquire") => (Method::Acquire, true, false, true),
            (ObjKind::Lock, "acquirev") => (Method::AcquireV, true, false, true),
            (ObjKind::Lock, "release") => (Method::Release, true, false, false),
            (ObjKind::Stack, "push") => (Method::Push, false, true, false),
            (ObjKind::Stack, "push_rel") => (Method::Push, true, true, false),
            (ObjKind::Stack, "pop") => (Method::Pop, false, false, true),
            (ObjKind::Stack, "pop_acq") => (Method::Pop, true, false, true),
            (ObjKind::Queue, "enq") => (Method::Enq, false, true, false),
            (ObjKind::Queue, "enq_rel") => (Method::Enq, true, true, false),
            (ObjKind::Queue, "deq") => (Method::Deq, false, false, true),
            (ObjKind::Queue, "deq_acq") => (Method::Deq, true, false, true),
            (ObjKind::Register, "read") => (Method::RegRead, false, false, true),
            (ObjKind::Register, "read_acq") => (Method::RegRead, true, false, true),
            (ObjKind::Register, "write") => (Method::RegWrite, false, true, false),
            (ObjKind::Register, "write_rel") => (Method::RegWrite, true, true, false),
            (ObjKind::Counter, "inc") => (Method::Inc, true, false, true),
            (k, m) => {
                return Err(self.err(
                    mspan,
                    format!("object `{oname}` ({k:?}) has no method `{m}`"),
                ))
            }
        };
        if result.is_some() && !has_result {
            return Err(self.err(
                mspan,
                format!("method `{mname}` returns no value; drop the `… =` binding"),
            ));
        }
        self.expect(&Tok::LParen, "to open the argument list")?;
        let arg = if needs_arg {
            let e = self.parse_exp(ti)?;
            Some(e)
        } else {
            None
        };
        self.expect(&Tok::RParen, "to close the argument list")?;
        let reg = match result {
            Some((rname, rspan)) => Some(self.threads[ti].target(&rname, rspan)),
            None => None,
        };
        Ok(Com::MethodCall { reg, obj, method, arg, sync })
    }

    fn resolve_var(&self, name: &str, span: Span) -> Result<VarRef, ParseError> {
        match self.lookup_decl(name) {
            Some(Decl::Var(v)) => Ok(v),
            Some(Decl::Obj(..)) => {
                Err(self.err(span, format!("`{name}` is an object, not a shared variable")))
            }
            None => Err(self.err(span, format!("undeclared shared variable `{name}`"))),
        }
    }

    // -----------------------------------------------------------------
    // Expressions (local: registers and constants only)
    // -----------------------------------------------------------------

    fn parse_exp(&mut self, ti: usize) -> Result<Exp, ParseError> {
        self.parse_or(ti)
    }

    fn parse_or(&mut self, ti: usize) -> Result<Exp, ParseError> {
        let mut e = self.parse_and(ti)?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let r = self.parse_and(ti)?;
            e = Exp::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_and(&mut self, ti: usize) -> Result<Exp, ParseError> {
        let mut e = self.parse_cmp(ti)?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let r = self.parse_cmp(ti)?;
            e = Exp::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_cmp(&mut self, ti: usize) -> Result<Exp, ParseError> {
        let e = self.parse_add(ti)?;
        let op = match self.peek() {
            Tok::EqEq => Some((BinOp::Eq, false)),
            Tok::NotEq => Some((BinOp::Ne, false)),
            Tok::Lt => Some((BinOp::Lt, false)),
            Tok::Le => Some((BinOp::Le, false)),
            Tok::Gt => Some((BinOp::Lt, true)),
            Tok::Ge => Some((BinOp::Le, true)),
            _ => None,
        };
        if let Some((op, swap)) = op {
            self.bump();
            let r = self.parse_add(ti)?;
            let (a, b) = if swap { (r, e) } else { (e, r) };
            return Ok(Exp::Bin(op, Box::new(a), Box::new(b)));
        }
        Ok(e)
    }

    fn parse_add(&mut self, ti: usize) -> Result<Exp, ParseError> {
        let mut e = self.parse_mul(ti)?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.parse_mul(ti)?;
            e = Exp::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_mul(&mut self, ti: usize) -> Result<Exp, ParseError> {
        let mut e = self.parse_unary(ti)?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.parse_unary(ti)?;
            e = Exp::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_unary(&mut self, ti: usize) -> Result<Exp, ParseError> {
        match self.peek() {
            Tok::Bang => {
                self.bump();
                let e = self.parse_unary(ti)?;
                Ok(Exp::Un(UnOp::Not, Box::new(e)))
            }
            Tok::Minus => {
                self.bump();
                let e = self.parse_unary(ti)?;
                // Fold constant negation so `-3` is a literal.
                if let Exp::Val(Val::Int(n)) = e {
                    Ok(Exp::Val(Val::Int(-n)))
                } else {
                    Ok(Exp::Un(UnOp::Neg, Box::new(e)))
                }
            }
            _ => self.parse_primary(ti),
        }
    }

    fn parse_primary(&mut self, ti: usize) -> Result<Exp, ParseError> {
        let span = self.span();
        match self.bump().0 {
            Tok::Int(n) => Ok(Exp::Val(Val::Int(n))),
            Tok::LParen => {
                let e = self.parse_exp(ti)?;
                self.expect(&Tok::RParen, "to close the parenthesised expression")?;
                Ok(e)
            }
            Tok::Ident(s) => match s.as_str() {
                "true" => Ok(Exp::Val(Val::Bool(true))),
                "false" => Ok(Exp::Val(Val::Bool(false))),
                "empty" => Ok(Exp::Val(Val::Empty)),
                "bot" => Ok(Exp::Val(Val::Bot)),
                "even" => {
                    self.expect(&Tok::LParen, "to open `even(…)`")?;
                    let e = self.parse_exp(ti)?;
                    self.expect(&Tok::RParen, "to close `even(…)`")?;
                    Ok(Exp::Un(UnOp::Even, Box::new(e)))
                }
                name => {
                    if let Some(r) = self.threads[ti].lookup(name) {
                        return Ok(Exp::Reg(r));
                    }
                    match self.lookup_decl(name) {
                        Some(Decl::Var(_)) => Err(self.err(
                            span,
                            format!(
                                "shared variable `{name}` cannot appear inside an expression; \
                                 read it into a register first"
                            ),
                        )),
                        Some(Decl::Obj(..)) => Err(self.err(
                            span,
                            format!("object `{name}` cannot appear inside an expression"),
                        )),
                        None => Err(self.err(
                            span,
                            format!(
                                "undeclared variable or register `{name}` \
                                 (registers must be assigned before first use)"
                            ),
                        )),
                    }
                }
            },
            other => Err(self.err(span, format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP_RLX: &str = r#"
        litmus "MP+rlx"
        about "relaxed message passing admits the stale data read"
        var d = 0
        var f = 0
        thread T1 { d = 5; f = 1; }
        thread T2 { r1 = f; r2 = d; }
        observe T2.r1 T2.r2
        expected { (0, 0) (0, 5) (1, 0) (1, 5) }
    "#;

    #[test]
    fn parses_relaxed_mp() {
        let p = parse_litmus(MP_RLX).unwrap();
        assert_eq!(p.name, "MP+rlx");
        assert_eq!(p.prog.n_threads(), 2);
        assert_eq!(p.observe.len(), 2);
        assert_eq!(p.expected.len(), 4);
        assert_eq!(p.observe_names[0], ("T2".to_string(), "r1".to_string()));
    }

    #[test]
    fn annotations_and_rmw_parse() {
        let src = r#"
            litmus "anns"
            var x = 0
            thread T1 { x =rel 1; r0 = cas(x, 1, 2); r1 = fai(x); }
            thread T2 { r2 =acq x; }
            observe T1.r0 T1.r1 T2.r2
            expected { }
        "#;
        let p = parse_litmus(src).unwrap();
        assert_eq!(p.prog.threads[0].n_regs, 2);
        assert_eq!(p.prog.threads[1].n_regs, 1);
    }

    #[test]
    fn control_flow_and_objects_parse() {
        let src = r#"
            litmus "cf"
            var d = 0
            stack s
            lock l
            queue q
            thread T1 {
                d = 5;
                s.push_rel(1);
                l.acquire(); l.release();
                q.enq(7);
            }
            thread T2 {
                do { r1 = s.pop_acq(); } until (r1 == 1);
                if (r1 == 1) { r2 = d; } else { r2 = 0 - 1; }
                while (r2 < 0) { r2 = r2 + 1; }
                r3 = q.deq();
            }
            observe T2.r1 T2.r2 T2.r3
            expected { (1, 5, 7) (1, 5, empty) }
        "#;
        let p = parse_litmus(src).unwrap();
        assert_eq!(p.prog.objects.len(), 3);
        assert_eq!(p.expected.len(), 2);
    }

    #[test]
    fn error_spans_point_at_the_offence() {
        // Unknown annotation on line 4.
        let src = "litmus \"e\"\nvar x = 0\nthread T {\n  x =rlx 1;\n}\nobserve T.x\nexpected {}";
        let e = parse_litmus(src).unwrap_err();
        assert_eq!(e.span.line, 4);
        assert!(e.msg.contains("=rlx"), "{}", e.msg);
    }

    #[test]
    fn observed_register_must_exist() {
        let src = r#"
            litmus "e"
            var x = 0
            thread T { r1 = x; }
            observe T.r9
            expected { (0) }
        "#;
        let e = parse_litmus(src).unwrap_err();
        assert!(e.msg.contains("no register `r9`"), "{}", e.msg);
    }

    #[test]
    fn negative_literals_parse_everywhere() {
        let src = r#"
            litmus "neg"
            var x = -3
            thread T { r1 = x; r2 = -7; }
            observe T.r1 T.r2
            expected { (-3, -7) }
        "#;
        let p = parse_litmus(src).unwrap();
        assert!(p.expected.contains(&vec![Val::Int(-3), Val::Int(-7)]));
    }
}
