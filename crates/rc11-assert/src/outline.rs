//! Proof outlines: label-indexed assertions in the style of Figures 3 and 7.
//!
//! An outline attaches to each labelled statement of each thread a
//! *precondition* that must hold whenever control of that thread is at the
//! statement's first instruction, plus a global invariant (checked at every
//! reachable configuration) and a postcondition (checked at full
//! termination). Semantic validity of such an outline — checked by
//! exhaustive exploration in rc11-check — subsumes Owicki–Gries local
//! correctness *and* interference freedom: an assertion violated by another
//! thread's step would be violated at some reachable configuration with the
//! owning thread sitting at the labelled point.

use crate::pred::Pred;
use std::collections::BTreeMap;

/// A proof outline for a compiled program.
#[derive(Debug, Clone)]
pub struct ProofOutline {
    /// Human-readable name (reports).
    pub name: String,
    /// Global invariant (`Inv` in Figure 7), checked at every reachable
    /// configuration.
    pub invariant: Pred,
    /// Per thread: statement label → precondition. The precondition must
    /// hold in every reachable configuration where the thread's pc is at
    /// the *first instruction* of that label's region.
    pub pre: Vec<BTreeMap<u32, Pred>>,
    /// Postcondition, checked when every thread has terminated.
    pub post: Pred,
}

impl ProofOutline {
    /// An outline with no annotations for `n_threads` threads (add to it).
    pub fn new(name: impl Into<String>, n_threads: usize) -> ProofOutline {
        ProofOutline {
            name: name.into(),
            invariant: Pred::True,
            pre: vec![BTreeMap::new(); n_threads],
            post: Pred::True,
        }
    }

    /// Set the global invariant.
    pub fn invariant(mut self, p: Pred) -> Self {
        self.invariant = p;
        self
    }

    /// Attach the precondition of statement `label` in thread `tid`.
    pub fn pre(mut self, tid: usize, label: u32, p: Pred) -> Self {
        let prev = self.pre[tid].insert(label, p);
        assert!(prev.is_none(), "duplicate annotation for thread {tid} label {label}");
        self
    }

    /// Set the postcondition.
    pub fn post(mut self, p: Pred) -> Self {
        self.post = p;
        self
    }

    /// Total number of attached assertions (for reports).
    pub fn n_assertions(&self) -> usize {
        2 + self.pre.iter().map(|m| m.len()).sum::<usize>()
    }
}
