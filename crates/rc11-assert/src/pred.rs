//! The observability assertion language of Section 5.1.
//!
//! Assertions are predicates over client–library C11 configurations
//! `(ρ, γ, β)` extended with program counters (the paper's proof outlines
//! mention `pc_t` inside assertions — Figure 7). The atoms:
//!
//! | paper | here |
//! |---|---|
//! | `⟨x = u⟩t` possible observation | [`Pred::PossibleObs`] |
//! | `[x = u]t` definite observation | [`Pred::DefiniteObs`] |
//! | `⟨x = u⟩[y = v]t` conditional observation | [`Pred::CondObs`] |
//! | `⟨o.m⟩t` / `[o.m]t` on objects | [`Pred::PossibleObsOp`] / [`Pred::DefiniteObsOp`] |
//! | `⟨o.m⟩L[y = v]C_t` cross-component conditional | [`Pred::CondObsOp`] |
//! | `C^u_x` covered | [`Pred::Covered`] |
//! | `H o.m` hidden value | [`Pred::Hidden`] |
//! | `[s.pop emp]t`, `⟨s.pop v⟩t`, `⟨s.pop v⟩[y = n]t` | [`Pred::PopEmpty`], [`Pred::CanPop`], [`Pred::CondPop`] |
//!
//! The component (client vs library) lifting `⟨p⟩^C / ⟨p⟩^L` is carried by
//! the [`VarRef::comp`] field of each variable reference.

use rc11_core::{Combined, CState, Loc, MethodOp, OpId, Tid, Val};
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::Config;
use rc11_lang::{ObjRef, Reg, VarRef};

/// A pattern over recorded method operations, used by the object-observation
/// atoms (`⟨o.m⟩t` with `m` e.g. `release_2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpPat {
    /// `o.init_0`.
    Init,
    /// `l.acquire_n` for the given `n` (any thread).
    Acquire(u32),
    /// `l.release_n` for the given `n`.
    Release(u32),
    /// Any acquire.
    AnyAcquire,
    /// Any release.
    AnyRelease,
    /// `s.push(v)`.
    Push(Val),
    /// `s.pop(v)`.
    Pop(Val),
}

impl OpPat {
    /// Does `m` match this pattern?
    pub fn matches(&self, m: MethodOp) -> bool {
        match (self, m) {
            (OpPat::Init, MethodOp::Init) => true,
            (OpPat::Acquire(n), MethodOp::LockAcquire { n: k, .. }) => *n == k,
            (OpPat::Release(n), MethodOp::LockRelease { n: k }) => *n == k,
            (OpPat::AnyAcquire, MethodOp::LockAcquire { .. }) => true,
            (OpPat::AnyRelease, MethodOp::LockRelease { .. }) => true,
            (OpPat::Push(v), MethodOp::Push { v: u, .. }) => *v == u,
            (OpPat::Pop(v), MethodOp::Pop { v: u, .. }) => *v == u,
            _ => false,
        }
    }
}

/// Assertions over configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Negation.
    Not(Box<Pred>),
    /// Conjunction of all operands.
    And(Vec<Pred>),
    /// Disjunction of any operand.
    Or(Vec<Pred>),
    /// Implication.
    Implies(Box<Pred>, Box<Pred>),

    /// `r = v` for thread `tid`'s register.
    RegEq {
        /// Thread owning the register.
        tid: Tid,
        /// The register.
        reg: Reg,
        /// Expected value.
        val: Val,
    },
    /// `r ∈ vals`.
    RegIn {
        /// Thread owning the register.
        tid: Tid,
        /// The register.
        reg: Reg,
        /// Allowed values.
        vals: Vec<Val>,
    },
    /// `pc_t ∈ labels` — thread `tid` is at one of the listed statement
    /// labels (region semantics, see [`rc11_lang::cfg::ThreadCfg::label_at`]).
    AtLabel {
        /// The thread.
        tid: Tid,
        /// Statement labels.
        labels: Vec<u32>,
    },
    /// Thread `tid` has terminated (is at `Halt`).
    Terminated {
        /// The thread.
        tid: Tid,
    },

    /// `⟨x = u⟩t` — thread `t` may observe value `u` for `x`.
    PossibleObs {
        /// Observing thread.
        tid: Tid,
        /// The variable.
        var: VarRef,
        /// The value.
        val: Val,
    },
    /// `[x = u]t` — thread `t` can only see the last write of `x`, which
    /// wrote `u`.
    DefiniteObs {
        /// Observing thread.
        tid: Tid,
        /// The variable.
        var: VarRef,
        /// The value.
        val: Val,
    },
    /// `⟨x = u⟩[y = v]t` — if `t` synchronises with a write of `u` to `x`,
    /// it subsequently definitely observes `v` for `y` (`x`, `y` in the
    /// same component).
    CondObs {
        /// Observing thread.
        tid: Tid,
        /// The hypothesis variable `x`.
        xvar: VarRef,
        /// The hypothesis value `u`.
        xval: Val,
        /// The conclusion variable `y`.
        yvar: VarRef,
        /// The conclusion value `v`.
        yval: Val,
    },
    /// `C^u_x` — every uncovered operation on `x` is the maximal one and
    /// wrote `u`.
    Covered {
        /// The variable.
        var: VarRef,
        /// The value of the sole uncovered (maximal) operation.
        val: Val,
    },

    /// `⟨o.m⟩t` — an operation matching `pat` is observable to `t` on `o`.
    PossibleObsOp {
        /// Observing thread.
        tid: Tid,
        /// The object.
        obj: ObjRef,
        /// The operation pattern.
        pat: OpPat,
    },
    /// `[o.m]t` — `t`'s view of `o` is the maximal operation, and it
    /// matches `pat`.
    DefiniteObsOp {
        /// Observing thread.
        tid: Tid,
        /// The object.
        obj: ObjRef,
        /// The operation pattern.
        pat: OpPat,
    },
    /// `H o.m` — operations matching `pat` exist on `o` and all are
    /// covered (hidden from interaction).
    Hidden {
        /// The object.
        obj: ObjRef,
        /// The operation pattern.
        pat: OpPat,
    },
    /// `C o.m` — every uncovered operation on `o` matches `pat` and is the
    /// maximal one (Figure 7's `C l.acquire_1`).
    CoveredOp {
        /// The object.
        obj: ObjRef,
        /// The operation pattern.
        pat: OpPat,
    },
    /// `⟨o.m⟩L[y = v]C_t` — every observable operation matching `pat` on
    /// `o` (library) has a modification view whose *client* half definitely
    /// observes `v` for `y`: synchronising with it establishes `[y = v]t`.
    CondObsOp {
        /// Observing thread.
        tid: Tid,
        /// The object (library component).
        obj: ObjRef,
        /// The operation pattern.
        pat: OpPat,
        /// The conclusion variable (client component).
        yvar: VarRef,
        /// The conclusion value.
        yval: Val,
    },

    /// `[s.pop emp]` — a pop can only return `Empty` (no uncovered push).
    /// The paper indexes this by thread; under the global-top stack
    /// semantics (DESIGN.md, design choice 3) it is thread-independent and
    /// the index is kept for interface fidelity only.
    PopEmpty {
        /// Observing thread (unused under global-top semantics).
        tid: Tid,
        /// The stack.
        obj: ObjRef,
    },
    /// `⟨s.pop v⟩t` — a pop would return `v` (the top uncovered push wrote
    /// `v`).
    CanPop {
        /// Observing thread (unused under global-top semantics).
        tid: Tid,
        /// The stack.
        obj: ObjRef,
        /// The value.
        val: Val,
    },
    /// `⟨s.pop v⟩[y = n]t` — if a pop returns `v`, the popping thread
    /// subsequently definitely observes `n` for client variable `y` (the
    /// push is releasing and its client-half view pins `y`).
    CondPop {
        /// The popping thread.
        tid: Tid,
        /// The stack.
        obj: ObjRef,
        /// The popped value.
        val: Val,
        /// The conclusion variable.
        yvar: VarRef,
        /// The conclusion value.
        yval: Val,
    },
    /// Thread `tid` currently holds lock `obj` (the maximal lock operation
    /// is an acquire by `tid`) — used to state mutual exclusion directly.
    HoldsLock {
        /// The thread.
        tid: Tid,
        /// The lock.
        obj: ObjRef,
    },
}

impl std::fmt::Display for OpPat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpPat::Init => write!(f, "init_0"),
            OpPat::Acquire(n) => write!(f, "acquire_{n}"),
            OpPat::Release(n) => write!(f, "release_{n}"),
            OpPat::AnyAcquire => write!(f, "acquire_*"),
            OpPat::AnyRelease => write!(f, "release_*"),
            OpPat::Push(v) => write!(f, "push({v})"),
            OpPat::Pop(v) => write!(f, "pop({v})"),
        }
    }
}

impl std::fmt::Display for Pred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn tsub(t: &Tid) -> String {
            format!("{}", t.0 + 1)
        }
        match self {
            Pred::True => write!(f, "⊤"),
            Pred::False => write!(f, "⊥"),
            Pred::Not(p) => write!(f, "¬({p})"),
            Pred::And(ps) => {
                let s: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", s.join(" ∧ "))
            }
            Pred::Or(ps) => {
                let s: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", s.join(" ∨ "))
            }
            Pred::Implies(a, b) => write!(f, "({a} ⇒ {b})"),
            Pred::RegEq { tid, reg, val } => write!(f, "{reg}@T{} = {val}", tsub(tid)),
            Pred::RegIn { tid, reg, vals } => {
                let s: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
                write!(f, "{reg}@T{} ∈ {{{}}}", tsub(tid), s.join(","))
            }
            Pred::AtLabel { tid, labels } => {
                let s: Vec<String> = labels.iter().map(|k| k.to_string()).collect();
                write!(f, "pc{} ∈ {{{}}}", tsub(tid), s.join(","))
            }
            Pred::Terminated { tid } => write!(f, "pc{} = end", tsub(tid)),
            Pred::PossibleObs { tid, var, val } => {
                write!(f, "⟨{:?} = {val}⟩{}", var.loc, tsub(tid))
            }
            Pred::DefiniteObs { tid, var, val } => {
                write!(f, "[{:?} = {val}]{}", var.loc, tsub(tid))
            }
            Pred::CondObs { tid, xvar, xval, yvar, yval } => write!(
                f,
                "⟨{:?} = {xval}⟩[{:?} = {yval}]{}",
                xvar.loc,
                yvar.loc,
                tsub(tid)
            ),
            Pred::Covered { var, val } => write!(f, "C^{val}_{:?}", var.loc),
            Pred::PossibleObsOp { tid, obj, pat } => {
                write!(f, "⟨{:?}.{pat}⟩{}", obj.loc, tsub(tid))
            }
            Pred::DefiniteObsOp { tid, obj, pat } => {
                write!(f, "[{:?}.{pat}]{}", obj.loc, tsub(tid))
            }
            Pred::Hidden { obj, pat } => write!(f, "H {:?}.{pat}", obj.loc),
            Pred::CoveredOp { obj, pat } => write!(f, "C {:?}.{pat}", obj.loc),
            Pred::CondObsOp { tid, obj, pat, yvar, yval } => write!(
                f,
                "⟨{:?}.{pat}⟩[{:?} = {yval}]{}",
                obj.loc,
                yvar.loc,
                tsub(tid)
            ),
            Pred::PopEmpty { tid, obj } => write!(f, "[{:?}.pop emp]{}", obj.loc, tsub(tid)),
            Pred::CanPop { tid, obj, val } => {
                write!(f, "⟨{:?}.pop {val}⟩{}", obj.loc, tsub(tid))
            }
            Pred::CondPop { tid, obj, val, yvar, yval } => write!(
                f,
                "⟨{:?}.pop {val}⟩[{:?} = {yval}]{}",
                obj.loc,
                yvar.loc,
                tsub(tid)
            ),
            Pred::HoldsLock { tid, obj } => write!(f, "holds({:?})@T{}", obj.loc, tsub(tid)),
        }
    }
}

/// Evaluation context: the compiled program (for label regions) plus a
/// configuration.
#[derive(Clone, Copy)]
pub struct EvalCtx<'a> {
    /// The compiled program.
    pub prog: &'a CfgProgram,
    /// The configuration under evaluation.
    pub cfg: &'a Config,
}

fn comp_state(mem: &Combined, var: VarRef) -> &CState {
    mem.comp(var.comp)
}

/// `dview(view, ops, x) = n` for the *own* half: `view(x)` is the maximal
/// op on `x` and wrote `n`.
fn dview_is(st: &CState, view_entry: OpId, loc: Loc, val: Val) -> bool {
    let last = st.max_op(loc);
    view_entry == last && st.op(last).act.wrval() == val
}

impl Pred {
    /// Evaluate this assertion in a configuration.
    pub fn eval(&self, ctx: EvalCtx<'_>) -> bool {
        let cfg = ctx.cfg;
        let mem = &cfg.mem;
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Not(p) => !p.eval(ctx),
            Pred::And(ps) => ps.iter().all(|p| p.eval(ctx)),
            Pred::Or(ps) => ps.iter().any(|p| p.eval(ctx)),
            Pred::Implies(a, b) => !a.eval(ctx) || b.eval(ctx),

            Pred::RegEq { tid, reg, val } => cfg.locals[tid.idx()][reg.idx()] == *val,
            Pred::RegIn { tid, reg, vals } => {
                vals.contains(&cfg.locals[tid.idx()][reg.idx()])
            }
            Pred::AtLabel { tid, labels } => {
                let th = &ctx.prog.threads[tid.idx()];
                th.label_at(cfg.pcs[tid.idx()]).is_some_and(|k| labels.contains(&k))
            }
            Pred::Terminated { tid } => {
                cfg.pcs[tid.idx()] == ctx.prog.threads[tid.idx()].halt_pc()
            }

            // ⟨x = n⟩t ≡ ∃w ∈ Obs(t, x). wrval(w) = n
            Pred::PossibleObs { tid, var, val } => {
                let st = comp_state(mem, *var);
                st.obs(*tid, var.loc).iter().any(|&w| st.op(w).act.wrval() == *val)
            }

            // [x = n]t ≡ dview(tview_t, ops, x) = n
            Pred::DefiniteObs { tid, var, val } => {
                let st = comp_state(mem, *var);
                dview_is(st, st.tview(*tid).get(var.loc), var.loc, *val)
            }

            // ⟨x = u⟩[y = v]t ≡ ∀w ∈ Obs(t,x). wrval(w) = u ⇒
            //     act(w) ∈ W^R ∧ dview(mview_w, ops, y) = v
            Pred::CondObs { tid, xvar, xval, yvar, yval } => {
                debug_assert_eq!(xvar.comp, yvar.comp, "CondObs is same-component");
                let st = comp_state(mem, *xvar);
                st.obs(*tid, xvar.loc).iter().all(|&w| {
                    st.op(w).act.wrval() != *xval
                        || (st.op(w).act.is_releasing()
                            && dview_is(st, st.mview_own(w).get(yvar.loc), yvar.loc, *yval))
                })
            }

            // C^u_x ≡ ∀(w,q) ∈ ops|x \ cvd. wrval(w) = u ∧ q = maxTS(x)
            Pred::Covered { var, val } => {
                let st = comp_state(mem, *var);
                let max = st.max_op(var.loc);
                st.mo(var.loc)
                    .iter()
                    .filter(|&&w| !st.is_covered(w))
                    .all(|&w| w == max && st.op(w).act.wrval() == *val)
            }

            // ⟨o.m⟩t ≡ ∃q. (o.m, q) ∈ ops ∧ q ≥ tview_t(o)
            Pred::PossibleObsOp { tid, obj, pat } => {
                let st = mem.lib();
                st.obs(*tid, obj.loc)
                    .iter()
                    .any(|&w| st.op(w).act.method().is_some_and(|m| pat.matches(m)))
            }

            // [o.m]t ≡ tview_t(o) = maxTS(o) ∧ (o.m, maxTS(o)) ∈ ops
            Pred::DefiniteObsOp { tid, obj, pat } => {
                let st = mem.lib();
                let max = st.max_op(obj.loc);
                st.tview(*tid).get(obj.loc) == max
                    && st.op(max).act.method().is_some_and(|m| pat.matches(m))
            }

            // C o.m ≡ ∀(w,q) ∈ ops|o \ cvd. w matches ∧ q = maxTS(o)
            Pred::CoveredOp { obj, pat } => {
                let st = mem.lib();
                let max = st.max_op(obj.loc);
                st.mo(obj.loc)
                    .iter()
                    .filter(|&&w| !st.is_covered(w))
                    .all(|&w| {
                        w == max && st.op(w).act.method().is_some_and(|m| pat.matches(m))
                    })
            }

            // H o.m ≡ (∃q. (o.m,q) ∈ ops) ∧ (∀q. (o.m,q) ∈ ops ⇒ covered)
            Pred::Hidden { obj, pat } => {
                let st = mem.lib();
                let mut any = false;
                let mut all_covered = true;
                for (w, m) in st.method_ops(obj.loc) {
                    if pat.matches(m) {
                        any = true;
                        all_covered &= st.is_covered(w);
                    }
                }
                any && all_covered
            }

            // ⟨o.m⟩L[y = v]C_t ≡ ∀q. (o.m, q) ∈ β.ops ∧ q ≥ β.tview_t(o) ⇒
            //     dview(β.mview_(o.m,q) restricted to client, γ.ops, y) = v
            Pred::CondObsOp { tid, obj, pat, yvar, yval } => {
                debug_assert_eq!(yvar.comp, rc11_core::Comp::Client);
                let lib = mem.lib();
                let client = mem.client();
                lib.obs(*tid, obj.loc).iter().all(|&w| {
                    !lib.op(w).act.method().is_some_and(|m| pat.matches(m))
                        || dview_is(
                            client,
                            lib.mview_other(w).get(yvar.loc),
                            yvar.loc,
                            *yval,
                        )
                })
            }

            Pred::PopEmpty { tid: _, obj } => {
                rc11_objects::stack::top(mem, obj.loc).is_none()
            }
            Pred::CanPop { tid: _, obj, val } => {
                rc11_objects::stack::top(mem, obj.loc).is_some_and(|(_, v, _)| v == *val)
            }
            Pred::CondPop { tid: _, obj, val, yvar, yval } => {
                debug_assert_eq!(yvar.comp, rc11_core::Comp::Client);
                match rc11_objects::stack::top(mem, obj.loc) {
                    None => true,
                    Some((w, v, rel)) => {
                        v != *val
                            || (rel
                                && dview_is(
                                    mem.client(),
                                    mem.lib().mview_other(w).get(yvar.loc),
                                    yvar.loc,
                                    *yval,
                                ))
                    }
                }
            }
            Pred::HoldsLock { tid, obj } => {
                rc11_objects::lock::holds_lock(mem, *tid, obj.loc)
            }
        }
    }
}
