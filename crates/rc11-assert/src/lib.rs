//! # rc11-assert — the observability assertion language (Section 5.1)
//!
//! Possible (`⟨x = u⟩t`), definite (`[x = u]t`) and conditional
//! (`⟨x = u⟩[y = v]t`) observation assertions over client–library state
//! pairs, their object-level variants (`⟨o.m⟩t`, `[o.m]t`, hidden `H`,
//! covered `C`), and stack/lock-derived forms used by the paper's example
//! proofs — plus [`outline::ProofOutline`], the label-indexed proof-outline
//! structure of Figures 3 and 7. Checking lives in rc11-check.

#![warn(missing_docs)]

pub mod dsl;
pub mod outline;
pub mod pred;

pub use outline::ProofOutline;
pub use pred::{EvalCtx, OpPat, Pred};
