//! Constructor shorthands for writing proof outlines the way the paper
//! writes them.
//!
//! Thread indices are plain `usize` here (converted to [`Tid`]) so outlines
//! read like the figures: `dobs(1, d1, 5)` is `[d1 = 5]₂` for thread index 1
//! (the paper's thread 2).

use crate::pred::{OpPat, Pred};
use rc11_core::{Tid, Val};
use rc11_lang::{ObjRef, Reg, VarRef};

/// `⊤`.
pub fn tt() -> Pred {
    Pred::True
}

/// `¬p`.
pub fn pnot(p: Pred) -> Pred {
    Pred::Not(Box::new(p))
}

/// `p1 ∧ … ∧ pn`.
pub fn pand(ps: impl IntoIterator<Item = Pred>) -> Pred {
    Pred::And(ps.into_iter().collect())
}

/// `p1 ∨ … ∨ pn`.
pub fn por(ps: impl IntoIterator<Item = Pred>) -> Pred {
    Pred::Or(ps.into_iter().collect())
}

/// `p ⇒ q`.
pub fn imp(p: Pred, q: Pred) -> Pred {
    Pred::Implies(Box::new(p), Box::new(q))
}

/// `r = n` (integer shorthand).
pub fn reg_eq(tid: usize, reg: Reg, n: i64) -> Pred {
    Pred::RegEq { tid: Tid(tid as u8), reg, val: Val::Int(n) }
}

/// `r = v` (any value).
pub fn reg_is(tid: usize, reg: Reg, val: Val) -> Pred {
    Pred::RegEq { tid: Tid(tid as u8), reg, val }
}

/// `r ∈ {n1, …}`.
pub fn reg_in(tid: usize, reg: Reg, ns: impl IntoIterator<Item = i64>) -> Pred {
    Pred::RegIn {
        tid: Tid(tid as u8),
        reg,
        vals: ns.into_iter().map(Val::Int).collect(),
    }
}

/// `pc_t ∈ {labels}`.
pub fn at(tid: usize, labels: impl IntoIterator<Item = u32>) -> Pred {
    Pred::AtLabel { tid: Tid(tid as u8), labels: labels.into_iter().collect() }
}

/// Thread `tid` has terminated.
pub fn terminated(tid: usize) -> Pred {
    Pred::Terminated { tid: Tid(tid as u8) }
}

/// `⟨x = n⟩t` — possible observation.
pub fn pobs(tid: usize, var: VarRef, n: i64) -> Pred {
    Pred::PossibleObs { tid: Tid(tid as u8), var, val: Val::Int(n) }
}

/// `[x = n]t` — definite observation.
pub fn dobs(tid: usize, var: VarRef, n: i64) -> Pred {
    Pred::DefiniteObs { tid: Tid(tid as u8), var, val: Val::Int(n) }
}

/// `⟨x = u⟩[y = v]t` — conditional observation.
pub fn cond_obs(tid: usize, x: VarRef, u: i64, y: VarRef, v: i64) -> Pred {
    Pred::CondObs {
        tid: Tid(tid as u8),
        xvar: x,
        xval: Val::Int(u),
        yvar: y,
        yval: Val::Int(v),
    }
}

/// `C^u_x` — covered.
pub fn covered(var: VarRef, u: i64) -> Pred {
    Pred::Covered { var, val: Val::Int(u) }
}

/// `⟨o.m⟩t` — possible observation of a method operation.
pub fn pobs_op(tid: usize, obj: ObjRef, pat: OpPat) -> Pred {
    Pred::PossibleObsOp { tid: Tid(tid as u8), obj, pat }
}

/// `[o.m]t` — definite observation of a method operation.
pub fn dobs_op(tid: usize, obj: ObjRef, pat: OpPat) -> Pred {
    Pred::DefiniteObsOp { tid: Tid(tid as u8), obj, pat }
}

/// `H o.m` — hidden.
pub fn hidden(obj: ObjRef, pat: OpPat) -> Pred {
    Pred::Hidden { obj, pat }
}

/// `C o.m` — covered (only the maximal, `pat`-matching op is uncovered).
pub fn covered_op(obj: ObjRef, pat: OpPat) -> Pred {
    Pred::CoveredOp { obj, pat }
}

/// `r = ⊥` — an unset register (used where the paper leaves locals
/// uninitialised).
pub fn reg_unset(tid: usize, reg: Reg) -> Pred {
    Pred::RegEq { tid: Tid(tid as u8), reg, val: Val::Bot }
}

/// `⟨o.m⟩L[y = v]C_t` — cross-component conditional observation.
pub fn cond_obs_op(tid: usize, obj: ObjRef, pat: OpPat, y: VarRef, v: i64) -> Pred {
    Pred::CondObsOp { tid: Tid(tid as u8), obj, pat, yvar: y, yval: Val::Int(v) }
}

/// `[s.pop emp]t`.
pub fn pop_empty(tid: usize, obj: ObjRef) -> Pred {
    Pred::PopEmpty { tid: Tid(tid as u8), obj }
}

/// `⟨s.pop v⟩t`.
pub fn can_pop(tid: usize, obj: ObjRef, v: i64) -> Pred {
    Pred::CanPop { tid: Tid(tid as u8), obj, val: Val::Int(v) }
}

/// `⟨s.pop v⟩[y = n]t`.
pub fn cond_pop(tid: usize, obj: ObjRef, v: i64, y: VarRef, n: i64) -> Pred {
    Pred::CondPop { tid: Tid(tid as u8), obj, val: Val::Int(v), yvar: y, yval: Val::Int(n) }
}

/// Thread `tid` holds lock `obj`.
pub fn holds_lock(tid: usize, obj: ObjRef) -> Pred {
    Pred::HoldsLock { tid: Tid(tid as u8), obj }
}
