//! Rendering tests for the assertion language (reports must read like the
//! paper's notation).

use rc11_assert::dsl::*;
use rc11_assert::OpPat;
use rc11_core::{Comp, Loc};
use rc11_lang::{ObjRef, Reg, VarRef};

fn d() -> VarRef {
    VarRef { comp: Comp::Client, loc: Loc(0) }
}

fn l() -> ObjRef {
    ObjRef { loc: Loc(0) }
}

#[test]
fn observation_atoms_render_like_the_paper() {
    assert_eq!(dobs(1, d(), 5).to_string(), "[Loc(0) = 5]2");
    assert_eq!(pobs(0, d(), 0).to_string(), "⟨Loc(0) = 0⟩1");
    assert!(cond_obs(1, d(), 1, d(), 5).to_string().contains("⟩["));
}

#[test]
fn object_atoms_render() {
    assert_eq!(hidden(l(), OpPat::Init).to_string(), "H Loc(0).init_0");
    assert!(dobs_op(0, l(), OpPat::Release(2)).to_string().contains("release_2"));
    assert!(covered_op(l(), OpPat::Acquire(1)).to_string().starts_with("C "));
    assert!(pop_empty(0, l()).to_string().contains("pop emp"));
}

#[test]
fn connectives_render() {
    let p = pand([tt(), pnot(pobs(0, d(), 9))]);
    let s = p.to_string();
    assert!(s.contains('∧') && s.contains('¬'), "{s}");
    let q = imp(at(0, [2, 3, 4]), reg_eq(1, Reg(0), 1));
    let s = q.to_string();
    assert!(s.contains("pc1 ∈ {2,3,4}") && s.contains('⇒'), "{s}");
}

#[test]
fn fig7_invariant_renders_readably() {
    let inv = pand([
        pnot(pand([at(0, [2, 3, 4]), at(1, [2, 3, 4])])),
        reg_in(1, Reg(0), [1, 3]),
    ]);
    let s = inv.to_string();
    assert!(s.contains("pc1"), "{s}");
    assert!(s.contains("pc2"), "{s}");
    assert!(s.contains("∈ {1,3}"), "{s}");
}
