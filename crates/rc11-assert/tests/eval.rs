//! Semantics tests for the assertion atoms, driven over hand-built memory
//! states mirroring the paper's running examples.

use rc11_assert::dsl::*;
use rc11_assert::pred::{EvalCtx, OpPat};
use rc11_core::{Comp, Tid, Val};
use rc11_lang::builder::*;
use rc11_lang::machine::Config;
use rc11_lang::{compile, CfgProgram};

/// Build the Figure-2 program (client d + stack s) and its compiled form.
fn mp_program() -> (CfgProgram, rc11_lang::VarRef, rc11_lang::ObjRef) {
    let mut p = ProgramBuilder::new("mp");
    let d = p.client_var("d", 0);
    let s = p.stack("s");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([lab(1, wr(d, 5)), lab(2, push_rel(s, 1))]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([lab(3, do_until(pop_acq(s, r1), eq(r1, 1))), lab(4, rd(r2, d))]));
    let prog = p.build();
    let cfg = compile(&prog);
    (cfg, d, s)
}

fn ctx<'a>(prog: &'a CfgProgram, cfg: &'a Config) -> EvalCtx<'a> {
    EvalCtx { prog, cfg }
}

#[test]
fn initial_state_assertions_of_figure_3() {
    let (prog, d, s) = mp_program();
    let cfg = Config::initial(&prog);
    let c = ctx(&prog, &cfg);
    // {[d = 0]1 ∧ [d = 0]2 ∧ [s.pop emp]1 ∧ [s.pop emp]2}
    assert!(dobs(0, d, 0).eval(c));
    assert!(dobs(1, d, 0).eval(c));
    assert!(pop_empty(0, s).eval(c));
    assert!(pop_empty(1, s).eval(c));
    // ¬⟨s.pop 1⟩2 — thread 2 cannot pop 1 yet.
    assert!(pnot(can_pop(1, s, 1)).eval(c));
    // pc assertions: both threads at their first labels.
    assert!(at(0, [1]).eval(c));
    assert!(at(1, [3]).eval(c));
    assert!(!terminated(0).eval(c));
}

#[test]
fn after_write_and_push_conditional_observation_holds() {
    let (prog, d, s) = mp_program();
    let mut cfg = Config::initial(&prog);
    // T1 executes d := 5.
    let w = cfg.mem.write_preds(Comp::Client, Tid(0), d.loc)[0];
    cfg.mem = cfg.mem.apply_write(Comp::Client, Tid(0), d.loc, Val::Int(5), false, w);
    // Before the push: [d = 5]1 but thread 2 may still see 0.
    let c = ctx(&prog, &cfg);
    assert!(dobs(0, d, 5).eval(c));
    assert!(pobs(1, d, 0).eval(c));
    assert!(pobs(1, d, 5).eval(c));
    assert!(!dobs(1, d, 5).eval(c));

    // T1 executes s.push^R(1).
    cfg.mem = rc11_objects::stack::push_steps(&cfg.mem, Tid(0), s.loc, Val::Int(1), true)
        .pop()
        .unwrap();
    let c = ctx(&prog, &cfg);
    // ⟨s.pop 1⟩[d = 5]2 — the precondition of thread 2's loop in Figure 3.
    assert!(can_pop(1, s, 1).eval(c));
    assert!(cond_pop(1, s, 1, d, 5).eval(c));

    // T2 pops (acquiring): now [d = 5]2.
    let (v, mem) = rc11_objects::stack::pop_steps(&cfg.mem, Tid(1), s.loc, true).pop().unwrap();
    assert_eq!(v, Val::Int(1));
    cfg.mem = mem;
    let c = ctx(&prog, &cfg);
    assert!(dobs(1, d, 5).eval(c));
    assert!(pop_empty(1, s).eval(c), "the push is consumed");
}

#[test]
fn relaxed_push_fails_conditional_observation() {
    let (prog, d, s) = mp_program();
    let mut cfg = Config::initial(&prog);
    let w = cfg.mem.write_preds(Comp::Client, Tid(0), d.loc)[0];
    cfg.mem = cfg.mem.apply_write(Comp::Client, Tid(0), d.loc, Val::Int(5), false, w);
    // Relaxed push: no view transfer promised.
    cfg.mem = rc11_objects::stack::push_steps(&cfg.mem, Tid(0), s.loc, Val::Int(1), false)
        .pop()
        .unwrap();
    let c = ctx(&prog, &cfg);
    assert!(can_pop(1, s, 1).eval(c));
    assert!(
        !cond_pop(1, s, 1, d, 5).eval(c),
        "Figure 1: a relaxed push must not promise [d = 5] after the pop"
    );
}

#[test]
fn lock_assertions_mirror_lemma_3_shapes() {
    let mut p = ProgramBuilder::new("locked");
    let x = p.client_var("x", 0);
    let l = p.lock("l");
    let tb = ThreadBuilder::new();
    p.add_thread(tb, seq([lab(1, acquire(l)), lab(2, release(l))]));
    let tb2 = ThreadBuilder::new();
    p.add_thread(tb2, seq([lab(3, acquire(l)), lab(4, release(l))]));
    let prog = compile(&p.build());
    let mut cfg = Config::initial(&prog);
    let c = ctx(&prog, &cfg);

    // Initially: [l.init_0] for both threads; nobody holds the lock.
    assert!(dobs_op(0, l, OpPat::Init).eval(c));
    assert!(dobs_op(1, l, OpPat::Init).eval(c));
    assert!(!holds_lock(0, l).eval(c));
    assert!(!hidden(l, OpPat::Init).eval(c), "init not hidden before any acquire");

    // T1 acquires.
    let (_, mem) = rc11_objects::lock::acquire_steps(&cfg.mem, Tid(0), l.loc).pop().unwrap();
    cfg.mem = mem;
    let c = ctx(&prog, &cfg);
    assert!(holds_lock(0, l).eval(c));
    assert!(!holds_lock(1, l).eval(c));
    assert!(hidden(l, OpPat::Init).eval(c), "H l.init_0 after the first acquire (covered)");
    assert!(dobs_op(0, l, OpPat::Acquire(1)).eval(c));
    // T2's view is stale: it can still *possibly* observe acquire_1 though.
    assert!(pobs_op(1, l, OpPat::Acquire(1)).eval(c));

    // T1 writes x := 5 then releases: conditional observation through the
    // release (rule (6) of Lemma 3 establishes ⟨release⟩[x = 5]).
    let w = cfg.mem.write_preds(Comp::Client, Tid(0), x.loc)[0];
    cfg.mem = cfg.mem.apply_write(Comp::Client, Tid(0), x.loc, Val::Int(5), false, w);
    let (_, mem) = rc11_objects::lock::release_steps(&cfg.mem, Tid(0), l.loc).pop().unwrap();
    cfg.mem = mem;
    let c = ctx(&prog, &cfg);
    assert!(cond_obs_op(1, l, OpPat::Release(2), x, 5).eval(c));

    // T2 acquires: [x = 5]2 (rule (5)'s conclusion).
    let (_, mem) = rc11_objects::lock::acquire_steps(&cfg.mem, Tid(1), l.loc).pop().unwrap();
    cfg.mem = mem;
    let c = ctx(&prog, &cfg);
    assert!(dobs(1, x, 5).eval(c));
    assert!(holds_lock(1, l).eval(c));
}

#[test]
fn covered_assertion_on_variables() {
    let mut p = ProgramBuilder::new("cvd");
    let x = p.client_var("x", 0);
    let mut tb = ThreadBuilder::new();
    let r = tb.reg("r");
    p.add_thread(tb, seq([cas(r, x, 0, 1)]));
    let prog = compile(&p.build());
    let mut cfg = Config::initial(&prog);
    let c = ctx(&prog, &cfg);
    assert!(!covered(x, 1).eval(c), "before the CAS, the uncovered op wrote 0");
    assert!(covered(x, 0).eval(c));

    let w = cfg.mem.update_preds(Comp::Client, Tid(0), x.loc, Some(Val::Int(0)))[0];
    cfg.mem = cfg.mem.apply_update(Comp::Client, Tid(0), x.loc, Val::Int(1), w);
    let c = ctx(&prog, &cfg);
    assert!(covered(x, 1).eval(c), "after the CAS only the update is uncovered, value 1");
    assert!(!covered(x, 0).eval(c));
}

#[test]
fn boolean_connectives() {
    let (prog, d, _) = mp_program();
    let cfg = Config::initial(&prog);
    let c = ctx(&prog, &cfg);
    assert!(pand([tt(), dobs(0, d, 0)]).eval(c));
    assert!(!pand([tt(), dobs(0, d, 5)]).eval(c));
    assert!(por([dobs(0, d, 5), dobs(0, d, 0)]).eval(c));
    assert!(imp(dobs(0, d, 5), tt()).eval(c), "false antecedent");
    assert!(pnot(dobs(0, d, 5)).eval(c));
    assert!(reg_is(1, rc11_lang::Reg(0), Val::Bot).eval(c));
    assert!(!reg_in(1, rc11_lang::Reg(0), []).eval(c));
}

#[test]
fn outline_builder_counts_assertions() {
    use rc11_assert::ProofOutline;
    let o = ProofOutline::new("t", 2)
        .invariant(tt())
        .pre(0, 1, tt())
        .pre(0, 2, tt())
        .pre(1, 3, tt())
        .post(tt());
    assert_eq!(o.n_assertions(), 5);
}
