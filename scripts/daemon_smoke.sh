#!/usr/bin/env bash
# End-to-end smoke for rc11d, the cache-fronted checking daemon.
#
# Drives the same sequence the tier-2 tests prove in-process, but through
# real processes and a real TCP socket:
#
#   1. `rc11 serve --cache DIR` in the background; parse the bound
#      address from its `rc11d: listening on ADDR` line.
#   2. Pass 1: submit the whole corpus — populates the cache.
#   3. Pass 2: resubmit with --expect-all-hits — every file must be
#      served from the in-memory cache, and --stats must report it.
#   4. Clean shutdown over the wire; the daemon process must exit.
#   5. Restart on the same cache directory; a third pass with
#      --expect-all-hits must be served entirely from the disk spill.
#
# Usage: scripts/daemon_smoke.sh [path-to-rc11-binary]
set -euo pipefail

cd "$(dirname "$0")/.."

RC11=${1:-target/release/rc11}
if [ ! -x "$RC11" ]; then
    echo "daemon_smoke: building $RC11" >&2
    cargo build --release --locked --bin rc11
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/rc11-daemon-smoke.XXXXXX")
LOG="$WORK/serve.log"
CACHE="$WORK/cache"
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

# Start the daemon and wait for its listening line (ephemeral port).
start_daemon() {
    : > "$LOG"
    "$RC11" serve --addr 127.0.0.1:0 --cache "$CACHE" >"$LOG" 2>&1 &
    SERVE_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/^rc11d: listening on //p' "$LOG" | head -n1)
        [ -n "$ADDR" ] && return 0
        if ! kill -0 "$SERVE_PID" 2>/dev/null; then
            echo "daemon_smoke: daemon died on startup:" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "daemon_smoke: daemon never printed its address:" >&2
    cat "$LOG" >&2
    exit 1
}

stop_daemon() {
    "$RC11" submit --addr "$ADDR" --shutdown
    for _ in $(seq 1 100); do
        kill -0 "$SERVE_PID" 2>/dev/null || { SERVE_PID=""; return 0; }
        sleep 0.1
    done
    echo "daemon_smoke: daemon did not exit after shutdown" >&2
    exit 1
}

echo "== pass 1: cold corpus (populates the cache) =="
start_daemon
"$RC11" submit corpus/ --addr "$ADDR"

echo "== pass 2: warm resubmission (must be 100% cache hits) =="
"$RC11" submit corpus/ --addr "$ADDR" --expect-all-hits --stats

echo "== clean shutdown over the wire =="
stop_daemon

echo "== restart on the same cache dir: disk spill must serve =="
start_daemon
"$RC11" submit corpus/ --addr "$ADDR" --expect-all-hits --stats
stop_daemon

echo "daemon_smoke: OK"
