#!/usr/bin/env bash
# End-to-end smoke for rc11d, the cache-fronted checking daemon.
#
# Drives the same sequence the tier-2 tests prove in-process, but through
# real processes and a real TCP socket:
#
#   1. `rc11 serve --cache DIR` in the background; parse the bound
#      address from its `rc11d: listening on ADDR` line.
#   2. Pass 1: submit the whole corpus — populates the cache.
#   3. Pass 2: resubmit with --expect-all-hits — every file must be
#      served from the in-memory cache, and --stats must report it.
#   4. Clean shutdown over the wire; the daemon process must exit.
#   5. Restart on the same cache directory; a third pass with
#      --expect-all-hits must be served entirely from the disk spill.
#
# The daemon runs with --metrics throughout, so the smoke also covers the
# extended observability surface (DESIGN.md §9): the stats payload must
# carry the queue gauge/peak, the config echo, and the latency/worker/
# fingerprint-class sections; `rc11 top ADDR --once` must render them
# live; and a restart must reset the counters while echoing the same
# config.
#
# Usage: scripts/daemon_smoke.sh [path-to-rc11-binary]
set -euo pipefail

cd "$(dirname "$0")/.."

RC11=${1:-target/release/rc11}
if [ ! -x "$RC11" ]; then
    echo "daemon_smoke: building $RC11" >&2
    cargo build --release --locked --bin rc11
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/rc11-daemon-smoke.XXXXXX")
LOG="$WORK/serve.log"
CACHE="$WORK/cache"
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

# Start the daemon and wait for its listening line (ephemeral port).
start_daemon() {
    : > "$LOG"
    "$RC11" serve --addr 127.0.0.1:0 --cache "$CACHE" --metrics >"$LOG" 2>&1 &
    SERVE_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/^rc11d: listening on //p' "$LOG" | head -n1)
        [ -n "$ADDR" ] && return 0
        if ! kill -0 "$SERVE_PID" 2>/dev/null; then
            echo "daemon_smoke: daemon died on startup:" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "daemon_smoke: daemon never printed its address:" >&2
    cat "$LOG" >&2
    exit 1
}

stop_daemon() {
    "$RC11" submit --addr "$ADDR" --shutdown
    for _ in $(seq 1 100); do
        kill -0 "$SERVE_PID" 2>/dev/null || { SERVE_PID=""; return 0; }
        sleep 0.1
    done
    echo "daemon_smoke: daemon did not exit after shutdown" >&2
    exit 1
}

# Grep the raw stats JSON (the `stats: {...}` line of `submit --stats`)
# for a required substring.
stats_must_have() {
    local stats_out=$1 needle=$2 why=$3
    echo "$stats_out" | grep -qF "$needle" \
        || { echo "daemon_smoke: stats missing $needle ($why)" >&2; exit 1; }
}

N_FILES=$(ls corpus/*.litmus | wc -l | tr -d ' ')

echo "== pass 1: cold corpus (populates the cache) =="
start_daemon
"$RC11" submit corpus/ --addr "$ADDR"

echo "== pass 2: warm resubmission (must be 100% cache hits) =="
STATS=$("$RC11" submit corpus/ --addr "$ADDR" --expect-all-hits --stats)
echo "$STATS"
stats_must_have "$STATS" '"queue_peak"' "queue gauge must survive sampling"
stats_must_have "$STATS" '"config"' "the daemon must echo its config"
stats_must_have "$STATS" '"metrics":true' "--metrics must be echoed in the config"
stats_must_have "$STATS" '"probe_latency"' "extended metrics: latency percentiles"
stats_must_have "$STATS" '"explore_latency"' "extended metrics: latency split"
stats_must_have "$STATS" '"queue_wait"' "extended metrics: queue-wait samples"
stats_must_have "$STATS" '"workers"' "extended metrics: per-worker utilization"
stats_must_have "$STATS" '"fp_classes"' "extended metrics: cache efficiency by class"

echo "== rc11 top must render the live metrics =="
TOP=$("$RC11" top "$ADDR" --once)
echo "$TOP"
echo "$TOP" | grep -q "^rc11d " || { echo "daemon_smoke: top: no header" >&2; exit 1; }
echo "$TOP" | grep -q "metrics on" || { echo "daemon_smoke: top: config echo missing" >&2; exit 1; }
echo "$TOP" | grep -q "latency (ms):" || { echo "daemon_smoke: top: no latency table" >&2; exit 1; }
echo "$TOP" | grep -q "^workers:" || { echo "daemon_smoke: top: no worker row" >&2; exit 1; }

echo "== clean shutdown over the wire =="
stop_daemon

echo "== restart on the same cache dir: disk spill must serve =="
start_daemon
STATS=$("$RC11" submit corpus/ --addr "$ADDR" --expect-all-hits --stats)
echo "$STATS"
# Counters reset across restart: the request counter must reflect only
# this pass's corpus submission (+1 for the stats request itself arriving
# after the snapshot would not count; check requests == N_FILES), with
# zero states explored (pure disk hits) — while the config echo persists.
stats_must_have "$STATS" "\"requests\":$N_FILES" "counters must reset on restart"
stats_must_have "$STATS" '"states_explored":0' "disk hits must not explore"
stats_must_have "$STATS" '"metrics":true' "config echo must survive restart"
"$RC11" top "$ADDR" --once | grep -q "metrics on" \
    || { echo "daemon_smoke: top after restart failed" >&2; exit 1; }
stop_daemon

echo "daemon_smoke: OK"
