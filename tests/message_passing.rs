//! Experiments E1 and E2: the Figure-1 and Figure-2 message-passing
//! programs, exhaustively and by sampling.

use rc11::figures;
use rc11::prelude::*;

#[test]
fn fig1_weak_outcome_is_reachable_and_outcome_set_exact() {
    let f = figures::fig1();
    let prog = compile(&f.prog);
    let ex = Explorer::new(&prog, &AbstractObjects);
    let report = ex.explore();
    assert!(report.ok());
    let mut r2s: Vec<Val> = report.terminated.iter().map(|c| c.reg(1, f.r2)).collect();
    r2s.sort();
    r2s.dedup();
    assert_eq!(r2s, vec![Val::Int(0), Val::Int(5)], "Figure 1: r2 ∈ {{0, 5}}, both reachable");
    // The pop always returned 1.
    for c in &report.terminated {
        assert_eq!(c.reg(1, f.r1), Val::Int(1));
    }
}

#[test]
fn fig2_strong_outcome_only() {
    let f = figures::fig2();
    let prog = compile(&f.prog);
    let report = Explorer::new(&prog, &AbstractObjects).explore();
    assert!(report.ok());
    assert!(!report.terminated.is_empty());
    for c in &report.terminated {
        assert_eq!(c.reg(1, f.r2), Val::Int(5), "Figure 2: r2 = 5 always");
    }
}

#[test]
fn fig1_sampling_finds_both_outcomes() {
    // The bench reports outcome frequencies; make sure sampling keeps
    // exhibiting the weak behaviour.
    let f = figures::fig1();
    let prog = compile(&f.prog);
    let samples = sample_terminals(&prog, &AbstractObjects, 200, 2_000, 42).expect("Figure 1 terminates");
    let stale = samples.iter().filter(|c| c.reg(1, f.r2) == Val::Int(0)).count();
    let fresh = samples.iter().filter(|c| c.reg(1, f.r2) == Val::Int(5)).count();
    assert_eq!(stale + fresh, 200);
    assert!(stale > 0, "stale outcome should appear in 200 samples");
    assert!(fresh > 0);
}

#[test]
fn fig2_sampling_never_finds_stale() {
    let f = figures::fig2();
    let prog = compile(&f.prog);
    let samples = sample_terminals(&prog, &AbstractObjects, 200, 2_000, 43).expect("Figure 2 terminates");
    assert!(samples.iter().all(|c| c.reg(1, f.r2) == Val::Int(5)));
}

#[test]
fn fig1_vs_fig2_state_space_sizes() {
    // Sanity on the experiment's denominators: both programs are small and
    // fully explorable; record rough magnitudes so regressions are visible.
    let f1 = figures::fig1();
    let f2 = figures::fig2();
    let r1 = Explorer::new(&compile(&f1.prog), &AbstractObjects).explore();
    let r2 = Explorer::new(&compile(&f2.prog), &AbstractObjects).explore();
    assert!(r1.states > 5 && r1.states < 100_000, "fig1: {} states", r1.states);
    assert!(r2.states > 5 && r2.states < 100_000, "fig2: {} states", r2.states);
}
