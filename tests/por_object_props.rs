//! Property tests for the POR independence oracle over **abstract object
//! methods** (ablation A5) — the companion of
//! `crates/rc11-core/tests/por_props.rs`, which covers the variable-level
//! Figure-5 primitives. This suite drives the real `rc11-objects`
//! semantics (`AbstractObjects::method_steps`) so every object transition
//! rule — lock acquire/release, stack push/pop, queue enq/deq, register
//! read/write, counter inc, each in both sync annotations — is anchored
//! against the oracle's commutation claim:
//!
//! for any cross-thread pair whose footprints do not
//! [`may_conflict`](rc11_core::StepFootprint::may_conflict) (a method vs a
//! client access, or methods on *different* objects; same-object pairs
//! conflict unless both are read-only), the other side's **entire
//! outcome list** — return values and count, in enumeration order — must
//! be unchanged by the step, and executing matched outcomes in both
//! orders must reach canonically equal states. Outcome *index* identifies
//! the choice across orders: enumeration walks the object's own history
//! lists, which an independent step cannot reorder (operation ids are
//! append-only).
//!
//! A blocked method (empty outcome list — a held lock's acquire) must
//! stay blocked across independent steps, which the list-equality check
//! covers for free.

use proptest::prelude::*;
use rc11::prelude::*;
use rc11_core::{AccessKind, Comp, Loc, OpId, StepFootprint, Tid};
use rc11_lang::ast::Method;
use rc11_lang::machine::ObjectSemantics;
use rc11_lang::program::ObjKind;
use rc11_core::{Combined, InitLoc, Val};

const N_THREADS: usize = 3;
/// Library layout: one object per kind, in this order.
const OBJECTS: [(ObjKind, Loc); 5] = [
    (ObjKind::Lock, Loc(0)),
    (ObjKind::Stack, Loc(1)),
    (ObjKind::Queue, Loc(2)),
    (ObjKind::Register, Loc(3)),
    (ObjKind::Counter, Loc(4)),
];

fn initial() -> Combined {
    Combined::new(
        &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
        &[InitLoc::Obj, InitLoc::Obj, InitLoc::Obj, InitLoc::Obj, InitLoc::Obj],
        N_THREADS,
    )
}

/// The method calls the registry accepts per object kind, with whether
/// they take a value argument.
fn methods_of(kind: ObjKind) -> &'static [(Method, bool)] {
    match kind {
        ObjKind::Lock => &[(Method::Acquire, false), (Method::AcquireV, false), (Method::Release, false)],
        ObjKind::Stack => &[(Method::Push, true), (Method::Pop, false)],
        ObjKind::Queue => &[(Method::Enq, true), (Method::Deq, false)],
        ObjKind::Register => &[(Method::RegWrite, true), (Method::RegRead, false)],
        ObjKind::Counter => &[(Method::Inc, false)],
    }
}

/// One resolved primitive transition: a client variable access, or one
/// *outcome* (by enumeration index) of an object method call.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Prim {
    ClientWrite { t: Tid, x: Loc, rel: bool, after: OpId },
    ClientRead { t: Tid, x: Loc, acq: bool, from: OpId },
    Call { t: Tid, kind: ObjKind, obj: Loc, method: Method, arg: Option<Val>, sync: bool, idx: usize },
}

impl Prim {
    fn footprint(self) -> StepFootprint {
        match self {
            Prim::ClientWrite { t, x, rel, .. } => {
                StepFootprint::access(t, Comp::Client, x, AccessKind::Write { rel })
            }
            Prim::ClientRead { t, x, acq, .. } => {
                StepFootprint::access(t, Comp::Client, x, AccessKind::Read { acq })
            }
            // Mirror `rc11_lang::machine::thread_footprint`: the register
            // read is the one history-preserving method.
            Prim::Call { t, obj, method, sync, .. } => {
                let kind = if method == Method::RegRead {
                    AccessKind::Read { acq: sync }
                } else {
                    AccessKind::Method { sync }
                };
                StepFootprint::access(t, Comp::Lib, obj, kind)
            }
        }
    }

    /// The outcome list of this primitive at `s`: `(return value, next
    /// state)` per resolved choice, in enumeration order.
    fn outcomes(self, s: &Combined) -> Vec<(Val, Combined)> {
        match self {
            Prim::ClientWrite { t, x, rel, after } => {
                if s.write_preds(Comp::Client, t, x).contains(&after) {
                    vec![(Val::Bot, s.apply_write(Comp::Client, t, x, Val::Int(7), rel, after))]
                } else {
                    Vec::new()
                }
            }
            Prim::ClientRead { t, x, acq, from } => s
                .read_choices(Comp::Client, t, x)
                .iter()
                .filter(|c| c.from == from)
                .map(|c| (c.val, s.apply_read(Comp::Client, t, x, acq, from)))
                .collect(),
            Prim::Call { t, kind, obj, method, arg, sync, .. } => {
                AbstractObjects.method_steps(s, t, obj, kind, method, arg, sync)
            }
        }
    }
}

/// Every resolved primitive of thread `t` at `s` (client accesses over
/// both variables plus one `Call` per method × sync annotation; the
/// `idx` of a `Call` is bound later, against the outcome list).
fn prims_of(s: &Combined, t: Tid) -> Vec<Prim> {
    let mut out = Vec::new();
    for x in [Loc(0), Loc(1)] {
        for after in s.write_preds(Comp::Client, t, x) {
            out.push(Prim::ClientWrite { t, x, rel: after.idx() % 2 == 0, after });
        }
        for c in s.read_choices(Comp::Client, t, x) {
            out.push(Prim::ClientRead { t, x, acq: c.from.idx() % 2 == 1, from: c.from });
        }
    }
    for (kind, obj) in OBJECTS {
        for &(method, takes_arg) in methods_of(kind) {
            for sync in [false, true] {
                let arg = takes_arg.then_some(Val::Int(3));
                out.push(Prim::Call { t, kind, obj, method, arg, sync, idx: 0 });
            }
        }
    }
    out
}

/// A state-building script step: apply a random primitive, picking one of
/// its outcomes; inapplicable/blocked steps are skipped.
fn apply_random(s: &Combined, t: u8, choice: u8, pick: u8) -> Combined {
    let prims = prims_of(s, Tid(t % N_THREADS as u8));
    if prims.is_empty() {
        return s.clone();
    }
    let prim = prims[choice as usize % prims.len()];
    let outs = prim.outcomes(s);
    if outs.is_empty() {
        return s.clone();
    }
    outs[pick as usize % outs.len()].1.clone()
}

fn run(script: &[(u8, u8, u8)]) -> Combined {
    script.iter().fold(initial(), |s, &(t, c, p)| apply_random(&s, t, c, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The oracle's commutation contract over the full object alphabet:
    /// for every cross-thread conflict-free pair, the other side's outcome
    /// list (returns *and* count — blocked stays blocked) is unchanged,
    /// and matched outcomes commute canonically.
    #[test]
    fn conflict_free_object_pairs_commute_canonically(
        script in prop::collection::vec((0u8..3, any::<u8>(), any::<u8>()), 0..10),
    ) {
        let s = run(&script);
        let mut checked = 0usize;
        'outer: for ta in 0..N_THREADS {
            for tb in 0..N_THREADS {
                if ta == tb {
                    continue;
                }
                for a in prims_of(&s, Tid(ta as u8)) {
                    let a_outs = a.outcomes(&s);
                    for b in prims_of(&s, Tid(tb as u8)) {
                        if a.footprint().may_conflict(&b.footprint()) {
                            continue;
                        }
                        let b_outs = b.outcomes(&s);
                        for (ai, (_, sa)) in a_outs.iter().enumerate() {
                            // After `a`, `b`'s fan-out must be identical in
                            // count and return values, outcome by outcome…
                            let b_after = b.outcomes(sa);
                            prop_assert_eq!(
                                b_after.len(), b_outs.len(),
                                "{:?} changed {:?}'s outcome count", a, b
                            );
                            for (bi, ((rv, sb), (rv2, sab))) in
                                b_outs.iter().zip(&b_after).enumerate()
                            {
                                prop_assert_eq!(
                                    rv, rv2,
                                    "{:?} changed {:?}'s return at index {}", a, b, bi
                                );
                                // …and the matched outcomes must commute:
                                // a then b[bi]  ≡  b[bi] then a[ai].
                                let a_after = a.outcomes(sb);
                                prop_assert!(
                                    a_after.len() > ai,
                                    "{:?} disabled outcome {} of {:?}", b, ai, a
                                );
                                prop_assert!(
                                    sab.canonical_eq(&a_after[ai].1.canonical()),
                                    "orders diverge: {:?}[{}] vs {:?}[{}]", a, ai, b, bi
                                );
                            }
                        }
                        checked += 1;
                        if checked > 150 {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    /// Non-vacuity: conflict-free cross-thread pairs involving a method
    /// call exist (methods on different objects, method vs client access),
    /// and same-object modifying pairs always conflict.
    #[test]
    fn object_oracle_is_not_vacuous(
        script in prop::collection::vec((0u8..3, any::<u8>(), any::<u8>()), 2..8),
    ) {
        let s = run(&script);
        let a = prims_of(&s, Tid(0));
        let b = prims_of(&s, Tid(1));
        let method_free = a
            .iter()
            .filter(|p| matches!(p, Prim::Call { .. }))
            .flat_map(|x| b.iter().map(move |y| (x, y)))
            .filter(|(x, y)| !x.footprint().may_conflict(&y.footprint()))
            .count();
        prop_assert!(method_free > 0, "no commuting method pair found");
        for x in &a {
            for y in &b {
                if let (
                    Prim::Call { obj: o1, method: m1, .. },
                    Prim::Call { obj: o2, method: m2, .. },
                ) = (x, y)
                {
                    if o1 == o2 && *m1 != Method::RegRead && *m2 != Method::RegRead {
                        prop_assert!(
                            x.footprint().may_conflict(&y.footprint()),
                            "same-object modifiers must conflict: {:?} vs {:?}", x, y
                        );
                    }
                }
            }
        }
    }
}
