//! Client-library composition with the extension objects (register,
//! counter, queue) — the paper's claim that "the theory itself is generic
//! and can be applied to concurrent objects in general", exercised through
//! the full machine.

use rc11::prelude::*;
use rc11_lang::{Com, Method};

/// Message passing through the abstract atomic register.
#[test]
fn register_message_passing() {
    let mut p = ProgramBuilder::new("reg-mp");
    let d = p.client_var("d", 0);
    let reg = p.object("flag", rc11::lang::ObjKind::Register);
    let t1 = ThreadBuilder::new();
    p.add_thread(
        t1,
        seq([
            wr(d, 5),
            Com::MethodCall {
                reg: None,
                obj: reg,
                method: Method::RegWrite,
                arg: Some(1i64.into_exp()),
                sync: true,
            },
        ]),
    );
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(
        t2,
        seq([
            do_until(
                Com::MethodCall {
                    reg: Some(r1),
                    obj: reg,
                    method: Method::RegRead,
                    arg: None,
                    sync: true,
                },
                eq(r1, 1),
            ),
            rd(r2, d),
        ]),
    );
    let prog = compile(&p.build());
    let report = Explorer::new(&prog, &AbstractObjects).explore();
    assert!(report.ok());
    for c in &report.terminated {
        assert_eq!(c.reg(1, r2), Val::Int(5), "register write^R/read^A must publish d = 5");
    }
}

/// The abstract counter hands out every value exactly once across threads
/// and synchronises the increment chain.
#[test]
fn counter_hands_out_unique_values() {
    let mut p = ProgramBuilder::new("ctr");
    let ctr = p.object("c", rc11::lang::ObjKind::Counter);
    let mut regs = Vec::new();
    for _ in 0..3 {
        let mut tb = ThreadBuilder::new();
        let r = tb.reg("r");
        regs.push(r);
        p.add_thread(
            tb,
            seq([Com::MethodCall { reg: Some(r), obj: ctr, method: Method::Inc, arg: None, sync: true }]),
        );
    }
    let prog = compile(&p.build());
    let report = Explorer::new(&prog, &AbstractObjects).explore();
    assert!(report.ok());
    for c in &report.terminated {
        let mut got: Vec<Val> = (0..3).map(|t| c.reg(t, regs[t])).collect();
        got.sort();
        assert_eq!(got, vec![Val::Int(0), Val::Int(1), Val::Int(2)]);
    }
}

/// A queue-based producer/consumer client: all items arrive FIFO and the
/// synchronising enqueue publishes the producer's client writes.
#[test]
fn queue_producer_consumer_composition() {
    let mut p = ProgramBuilder::new("pc");
    let d = p.client_var("d", 0);
    let q = p.queue("q");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(d, 7), enq_rel(q, 1), enq_rel(q, 2)]));
    let mut t2 = ThreadBuilder::new();
    let a = t2.reg("a");
    let b = t2.reg("b");
    let r = t2.reg("r");
    p.add_thread(
        t2,
        seq([
            do_until(deq_acq(q, a), ne(a, Val::Empty)),
            do_until(deq_acq(q, b), ne(b, Val::Empty)),
            rd(r, d),
        ]),
    );
    let prog = compile(&p.build());
    let report = Explorer::new(&prog, &AbstractObjects).explore();
    assert!(report.ok());
    assert!(!report.terminated.is_empty());
    for c in &report.terminated {
        assert_eq!((c.reg(1, a), c.reg(1, b)), (Val::Int(1), Val::Int(2)), "FIFO");
        assert_eq!(c.reg(1, r), Val::Int(7), "first enq^R already publishes d = 7");
    }
}

/// Two stacks used by the same client stay independent (compositionality
/// smoke test: separate objects, separate histories).
#[test]
fn two_objects_compose() {
    let mut p = ProgramBuilder::new("two-stacks");
    let s1 = p.stack("s1");
    let s2 = p.stack("s2");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([push_rel(s1, 1), push_rel(s2, 2)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(
        t2,
        seq([
            do_until(pop_acq(s1, r1), ne(r1, Val::Empty)),
            do_until(pop_acq(s2, r2), ne(r2, Val::Empty)),
        ]),
    );
    let prog = compile(&p.build());
    let report = Explorer::new(&prog, &AbstractObjects).explore();
    assert!(report.ok());
    for c in &report.terminated {
        assert_eq!(c.reg(1, r1), Val::Int(1));
        assert_eq!(c.reg(1, r2), Val::Int(2));
    }
}

/// Parallel exploration agrees with sequential on an object-heavy program.
#[test]
fn parallel_explorer_agrees_on_object_programs() {
    let f = rc11::figures::fig7();
    let prog = compile(&f.prog);
    let seq_report = Explorer::new(&prog, &AbstractObjects).explore();
    let par_report = par_explore(
        &prog,
        &AbstractObjects,
        &ExploreOptions { record_traces: false, ..Default::default() },
        4,
        |_, _| {},
    );
    assert_eq!(par_report.states, seq_report.states);
    assert_eq!(par_report.terminated.len(), seq_report.terminated.len());
}
