//! The committed `.litmus` corpus, held to the builder gallery and to both
//! engines.
//!
//! Three layers of pinning:
//!
//! * **Round-trip**: every builder-gallery litmus has a text twin in
//!   `corpus/` whose parsed program produces the *identical* verdict —
//!   same expected set, same observed outcome set, same state count —
//!   under both engines. A divergence is a bug in the parser (or a corpus
//!   file that drifted from its twin).
//! * **Corpus-wide exactness**: every corpus file (the twins plus the
//!   classics that exist only as text) passes — observed = expected — at
//!   1, 2, 4 and 8 workers, in both dedup modes.
//! * **Inventory**: ≥ 30 files, unique test names, every file parses.

use rc11::prelude::*;
use rc11_litmus as litmus;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// The corpus file that ports a gallery entry: lowercased, `+` → `_`.
fn twin_path(name: &str) -> PathBuf {
    corpus_dir().join(format!("{}.litmus", name.to_lowercase().replace('+', "_")))
}

fn observed(l: &litmus::Litmus, engine: &Engine) -> (BTreeSet<Vec<Val>>, usize) {
    let res = litmus::run_with(l, engine);
    (res.observed, res.states)
}

#[test]
fn every_gallery_entry_has_a_text_twin_with_an_identical_verdict() {
    for builder in litmus::all() {
        let path = twin_path(&builder.name);
        let text = litmus::load_file(&path)
            .unwrap_or_else(|e| panic!("{}: gallery twin missing or broken: {e}", builder.name));
        assert_eq!(text.name, builder.name, "{}: twin is misnamed", path.display());
        assert_eq!(
            text.expected, builder.expected,
            "{}: expected outcome sets drifted apart",
            builder.name
        );
        for engine in [Engine::Sequential, Engine::Parallel { workers: 4 }] {
            let (b_obs, b_states) = observed(&builder, &engine);
            let (t_obs, t_states) = observed(&text, &engine);
            assert_eq!(
                t_obs, b_obs,
                "{} ({engine:?}): parsed twin observes a different outcome set",
                builder.name
            );
            assert_eq!(
                t_states, b_states,
                "{} ({engine:?}): parsed twin explores a different state space",
                builder.name
            );
            assert_eq!(t_obs, text.expected, "{} ({engine:?}): twin verdict", builder.name);
        }
    }
}

#[test]
fn corpus_inventory_is_large_parseable_and_uniquely_named() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    assert!(
        entries.len() >= 30,
        "corpus must hold at least 30 litmus files, found {}",
        entries.len()
    );
    let mut names = BTreeSet::new();
    for (path, loaded) in &entries {
        let l = loaded
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: does not load: {e}", path.display()));
        assert!(!l.expected.is_empty(), "{}: empty expected set", path.display());
        assert!(
            names.insert(l.name.clone()),
            "{}: duplicate litmus name `{}`",
            path.display(),
            l.name
        );
    }
}

#[test]
fn whole_corpus_is_exact_under_both_engines_at_every_worker_count() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    for (path, loaded) in entries {
        let l = loaded.unwrap_or_else(|e| panic!("{e}"));
        let mut seq_observed = None;
        for workers in [1usize, 2, 4, 8] {
            let engine = choose_engine(workers);
            let res = litmus::run_with(&l, &engine);
            assert!(
                res.pass,
                "{} ({}) @ {workers} worker(s): observed {:?} ≠ expected {:?}",
                l.name,
                path.display(),
                res.observed,
                res.expected
            );
            if let Some(prev) = &seq_observed {
                assert_eq!(
                    prev, &res.observed,
                    "{} @ {workers} worker(s): engines disagree",
                    l.name
                );
            } else {
                seq_observed = Some(res.observed);
            }
        }
    }
}

/// Ablation A5: the whole corpus decided with sleep-set partial-order
/// reduction on, at 1/2/4/8 workers and in both dedup modes. POR prunes
/// transitions only, so this demands more than verdict parity: the state
/// count must equal the unreduced run's exactly, the outcome set must
/// equal the expected set, no run may deadlock or truncate, and the
/// reduced transition count must never exceed the unreduced one.
#[test]
fn whole_corpus_is_exact_with_por_on() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    for (path, loaded) in entries {
        let l = loaded.unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let full = Engine::Sequential.explore(
            &prog,
            objs,
            &ExploreOptions { record_traces: false, ..Default::default() },
        );
        for workers in [1usize, 2, 4, 8] {
            for fingerprint in [true, false] {
                let opts = ExploreOptions {
                    record_traces: false,
                    fingerprint,
                    por: true,
                    ..Default::default()
                };
                let engine = choose_engine(workers);
                let report = engine.explore(&prog, objs, &opts);
                assert!(
                    !report.truncated() && report.deadlocked.is_empty(),
                    "{} ({}) @ {workers} worker(s), fingerprint {fingerprint}",
                    l.name,
                    path.display()
                );
                assert_eq!(
                    report.states, full.states,
                    "{} @ {workers} worker(s), fingerprint {fingerprint}: POR lost states",
                    l.name
                );
                assert!(
                    report.transitions <= full.transitions,
                    "{} @ {workers} worker(s), fingerprint {fingerprint}: \
                     POR generated more transitions ({} > {})",
                    l.name,
                    report.transitions,
                    full.transitions
                );
                let observed: BTreeSet<Vec<Val>> = report
                    .terminated
                    .iter()
                    .map(|c| l.observe.iter().map(|&(t, r)| c.reg(t, r)).collect())
                    .collect();
                assert_eq!(
                    observed, l.expected,
                    "{} @ {workers} worker(s), fingerprint {fingerprint}: POR verdict",
                    l.name
                );
            }
        }
    }
}

/// Ablation A6: the whole corpus decided with thread-symmetry reduction
/// on, alone and combined with POR, at 1/2/4/8 workers and in both dedup
/// modes. Symmetry collapses each orbit to one representative, so the
/// state count may only shrink; the orbit expansion of the terminal and
/// deadlock sets must restore them bit-identically, which the observed
/// outcome set (== expected) and the terminal multiset pin down.
#[test]
fn whole_corpus_is_exact_with_symmetry_on() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    for (path, loaded) in entries {
        let l = loaded.unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let full = Engine::Sequential.explore(
            &prog,
            objs,
            &ExploreOptions { record_traces: false, ..Default::default() },
        );
        let multiset = |cfgs: &[Config]| {
            let mut m = std::collections::HashMap::<Config, usize>::new();
            for c in cfgs {
                *m.entry(c.clone()).or_insert(0) += 1;
            }
            m
        };
        let full_terminals = multiset(&full.terminated);
        for workers in [1usize, 2, 4, 8] {
            for fingerprint in [true, false] {
                for por in [false, true] {
                    let opts = ExploreOptions {
                        record_traces: false,
                        fingerprint,
                        por,
                        symmetry: true,
                        ..Default::default()
                    };
                    let engine = choose_engine(workers);
                    let report = engine.explore(&prog, objs, &opts);
                    let tag = format!(
                        "{} ({}) @ {workers} worker(s), fingerprint {fingerprint}, por {por}",
                        l.name,
                        path.display()
                    );
                    assert!(!report.truncated() && report.deadlocked.is_empty(), "{tag}");
                    assert!(
                        report.states <= full.states,
                        "{tag}: symmetry grew the state count ({} > {})",
                        report.states,
                        full.states
                    );
                    assert_eq!(
                        report.terminated.len(),
                        full.terminated.len(),
                        "{tag}: orbit expansion changed the terminal count"
                    );
                    assert_eq!(
                        multiset(&report.terminated),
                        full_terminals,
                        "{tag}: orbit expansion changed the terminal set"
                    );
                    let observed: BTreeSet<Vec<Val>> = report
                        .terminated
                        .iter()
                        .map(|c| l.observe.iter().map(|&(t, r)| c.reg(t, r)).collect())
                        .collect();
                    assert_eq!(observed, l.expected, "{tag}: symmetry verdict");
                }
            }
        }
    }
}

/// Ablation A7: the whole corpus decided with persistent-set DPOR on, at
/// 1/2/4/8 workers, in both dedup modes, alone and composed with
/// symmetry reduction. DPOR may shed *states* as well as transitions
/// (configurations reachable only by commuting a postponed thread first
/// are never built), and state/transition counts may differ between
/// engines (arrival order decides wake-up patterns) — so the binding
/// contract is: states ≤ unreduced, transitions ≤ unreduced, terminal
/// and deadlock **multisets bit-identical**, observed outcome set ==
/// expected.
#[test]
fn whole_corpus_is_exact_with_dpor_on() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    for (path, loaded) in entries {
        let l = loaded.unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let full = Engine::Sequential.explore(
            &prog,
            objs,
            &ExploreOptions { record_traces: false, ..Default::default() },
        );
        let multiset = |cfgs: &[Config]| {
            let mut m = std::collections::HashMap::<Config, usize>::new();
            for c in cfgs {
                *m.entry(c.clone()).or_insert(0) += 1;
            }
            m
        };
        let full_terminals = multiset(&full.terminated);
        for workers in [1usize, 2, 4, 8] {
            for fingerprint in [true, false] {
                for symmetry in [false, true] {
                    let opts = ExploreOptions {
                        record_traces: false,
                        fingerprint,
                        dpor: true,
                        symmetry,
                        ..Default::default()
                    };
                    let engine = choose_engine(workers);
                    let report = engine.explore(&prog, objs, &opts);
                    let tag = format!(
                        "{} ({}) @ {workers} worker(s), fingerprint {fingerprint}, \
                         symmetry {symmetry}",
                        l.name,
                        path.display()
                    );
                    assert!(!report.truncated() && report.deadlocked.is_empty(), "{tag}");
                    assert!(
                        report.states <= full.states,
                        "{tag}: DPOR grew the state count ({} > {})",
                        report.states,
                        full.states
                    );
                    assert!(
                        report.transitions <= full.transitions,
                        "{tag}: DPOR generated more transitions ({} > {})",
                        report.transitions,
                        full.transitions
                    );
                    assert_eq!(
                        multiset(&report.terminated),
                        full_terminals,
                        "{tag}: DPOR changed the terminal multiset"
                    );
                    let observed: BTreeSet<Vec<Val>> = report
                        .terminated
                        .iter()
                        .map(|c| l.observe.iter().map(|&(t, r)| c.reg(t, r)).collect())
                        .collect();
                    assert_eq!(observed, l.expected, "{tag}: DPOR verdict");
                }
            }
        }
    }
}

/// The acceptance bar for A7: the multi-component spin/lock corpus
/// entries shed at least 5x transitions under persistent-set DPOR
/// relative to the sleep-set-only search. These are the entries the bar
/// is measured on because their conflict graphs split into independent
/// components: sleep sets prune commuted sibling orders but never
/// states, so they still walk the full component *product*; persistent
/// sets run the components one after another, collapsing the product
/// into a sum.
#[test]
fn dpor_corpus_entries_shed_at_least_5x_transitions() {
    for file in ["ttas2x2.litmus", "mp_spin2x3.litmus", "deqspin2x2.litmus"] {
        let l = litmus::load_file(corpus_dir().join(file)).unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let sleep = Engine::Sequential.explore(
            &prog,
            objs,
            &ExploreOptions { record_traces: false, por: true, ..Default::default() },
        );
        let dpor = Engine::Sequential.explore(
            &prog,
            objs,
            &ExploreOptions { record_traces: false, dpor: true, ..Default::default() },
        );
        let factor = sleep.transitions as f64 / dpor.transitions.max(1) as f64;
        assert!(
            factor >= 5.0,
            "{file}: DPOR reduction {factor:.2}x below the 5x bar \
             ({} vs {} transitions)",
            dpor.transitions,
            sleep.transitions
        );
        assert!(dpor.states <= sleep.states, "{file}: DPOR grew the state count");
    }
}

/// The acceptance bar for A6: the fully symmetric corpus entries shed at
/// least 3x states under symmetry reduction.
#[test]
fn symmetric_corpus_entries_shed_at_least_3x_states() {
    for file in ["sym_cas3.litmus", "sym_inc3.litmus", "sym_fai4.litmus"] {
        let l = litmus::load_file(corpus_dir().join(file)).unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let base = ExploreOptions { record_traces: false, ..Default::default() };
        let full = Engine::Sequential.explore(&prog, &NoObjects, &base);
        let sym = Engine::Sequential
            .explore(&prog, &NoObjects, &ExploreOptions { symmetry: true, ..base.clone() });
        let factor = full.states as f64 / sym.states.max(1) as f64;
        assert!(
            factor >= 3.0,
            "{file}: symmetry reduction {factor:.2}x below the 3x bar \
             ({} vs {} states)",
            sym.states,
            full.states
        );
    }
}

/// Every corpus file is lint-clean: the `rc11 lint` rules produce no
/// findings (files with intentionally-dead CAS/FAI destination registers
/// carry `// lint: allow(…)` comments). CI enforces the same via
/// `rc11 lint corpus/ --deny-warnings`.
#[test]
fn whole_corpus_is_lint_clean() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    for (path, _) in entries {
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{e}"));
        let parsed =
            parse_litmus(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let findings = rc11::analyze::lint(&parsed);
        assert!(
            findings.is_empty(),
            "{}: lint findings:\n{}",
            path.display(),
            findings
                .iter()
                .map(|d| rc11::analyze::render_diagnostic(&path.display().to_string(), d))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// The corpus must also be exact under the legacy materialised-canonical
/// dedup path (fingerprint off) — the corpus doubles as an end-to-end
/// fingerprint differential on programs that exist only as text.
#[test]
fn whole_corpus_is_exact_with_fingerprints_off() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    let opts = ExploreOptions { record_traces: false, fingerprint: false, ..Default::default() };
    for (path, loaded) in entries {
        let l = loaded.unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        for engine in [Engine::Sequential, Engine::Parallel { workers: 4 }] {
            let report = engine.explore(&prog, litmus::objects_for(&l), &opts);
            assert!(!report.truncated() && report.deadlocked.is_empty(), "{}", path.display());
            let observed: BTreeSet<Vec<Val>> = report
                .terminated
                .iter()
                .map(|c| l.observe.iter().map(|&(t, r)| c.reg(t, r)).collect())
                .collect();
            assert_eq!(
                observed, l.expected,
                "{} ({engine:?}, fingerprint off): verdict",
                l.name
            );
        }
    }
}
