//! Experiment E10: Theorem 8.1 — forward simulation implies contextual
//! refinement — cross-checked empirically.
//!
//! For every (client, implementation) pair, the simulation verdict and the
//! *independently computed* literal trace-inclusion verdict (Definitions
//! 5–7) must agree in the direction the theorem states: simulation found ⇒
//! trace inclusion holds. The deliberately broken locks provide the
//! negative side: both checkers must refute them.

use rc11::prelude::*;
use rc11_refine::harness;
use rc11_refine::{
    check_forward_simulation, check_trace_inclusion, ClientShape, SimOptions, TraceOptions,
};

fn both_verdicts(
    client: &Program,
    l: ObjRef,
    imp: &rc11_lang::ObjectImpl,
) -> (bool, bool, String) {
    let shape = ClientShape::of(client);
    let conc = instantiate(client, l, imp);
    let abs_cfg = compile(client);
    let conc_cfg = compile(&conc);
    let sim = check_forward_simulation(
        &abs_cfg,
        &AbstractObjects,
        &conc_cfg,
        &NoObjects,
        &shape,
        SimOptions::default(),
    );
    let incl = check_trace_inclusion(
        &abs_cfg,
        &AbstractObjects,
        &conc_cfg,
        &NoObjects,
        &shape,
        TraceOptions::default(),
    );
    assert!(!sim.truncated, "{}: simulation truncated", imp.name);
    assert!(!incl.truncated, "{}: baseline truncated", imp.name);
    (sim.holds, incl.holds, format!("{} / {}", client.name, imp.name))
}

#[test]
fn simulation_implies_trace_inclusion_on_all_pairs() {
    let clients: Vec<(Program, ObjRef)> = vec![
        harness::handoff_client(),
        harness::counter_client(2),
        // Regression: repeated hand-offs force abstract stutter-closure
        // matching (a seqlock spin read can transfer the previous critical
        // section's views before the acquire completes).
        harness::rounds_client(2),
    ];
    let imps = [
        rc11_locks::seqlock(),
        rc11_locks::ticket(),
        rc11_locks::tas(),
        rc11_locks::ttas(),
        rc11_locks::broken_relaxed_seqlock(),
        rc11_locks::broken_noop_lock(),
    ];
    let mut checked = 0;
    for (client, l) in &clients {
        for imp in &imps {
            let (sim, incl, what) = both_verdicts(client, *l, imp);
            // Theorem 8.1: simulation ⇒ refinement.
            assert!(!sim || incl, "{what}: simulation held but trace inclusion failed");
            checked += 1;
        }
    }
    assert_eq!(checked, 18);
}

#[test]
fn correct_locks_pass_both_checkers() {
    let (client, l) = harness::handoff_client();
    for imp in rc11_locks::all_correct() {
        let (sim, incl, what) = both_verdicts(&client, l, &imp);
        assert!(sim, "{what}: simulation must hold (Propositions 9/10 and extensions)");
        assert!(incl, "{what}: trace inclusion must hold");
    }
}

#[test]
fn broken_locks_fail_both_checkers() {
    let (client, l) = harness::handoff_client();
    for imp in [rc11_locks::broken_relaxed_seqlock(), rc11_locks::broken_noop_lock()] {
        let (sim, incl, what) = both_verdicts(&client, l, &imp);
        assert!(!sim, "{what}: simulation must be refuted");
        assert!(!incl, "{what}: trace inclusion must be refuted");
    }
}

#[test]
fn fig7_client_refines_with_paper_locks() {
    // Propositions 9 and 10 on the paper's own client (unlabelled variant).
    let (client, l) = harness::fig7_client();
    for imp in [rc11_locks::seqlock(), rc11_locks::ticket()] {
        let report = rc11_refine::check_lock_refinement(&client, l, &imp);
        assert!(report.holds, "{}: Fig-7 client refinement failed", imp.name);
        assert!(report.concrete_states > 0 && report.abstract_states > 0);
    }
}
