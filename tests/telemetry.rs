//! The telemetry layer's contract, corpus-wide (DESIGN.md §9).
//!
//! Telemetry is observability, never semantics:
//!
//! * **Bit-identity**: every corpus file explores to the *identical*
//!   report with a sink attached and without one, sequential and at 4
//!   workers — states, transitions, terminals, deadlocks, violations,
//!   stop reason.
//! * **Counter consistency**: the snapshot a run attaches agrees with
//!   the report it rides on (`states`/`transitions` match exactly),
//!   per-worker expansion slots sum to the total expansion counter, and
//!   reduction counters are zero when no reduction is enabled.
//! * **Delta isolation**: one cumulative sink shared across several
//!   runs (the `--progress` configuration) still attaches exact per-run
//!   snapshots.

use rc11::prelude::*;
use rc11::telemetry::{Counter, Telemetry};
use rc11_litmus as litmus;
use std::path::PathBuf;
use std::sync::Arc;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

const WORKERS: [usize; 2] = [1, 4];

fn with_sink(opts: &ExploreOptions) -> (ExploreOptions, Arc<Telemetry>) {
    let tel = Telemetry::shared();
    (ExploreOptions { telemetry: Some(Arc::clone(&tel)), ..opts.clone() }, tel)
}

#[test]
fn telemetry_is_report_bit_identical_corpus_wide() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    for (path, loaded) in entries {
        let l = loaded.unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        for workers in WORKERS {
            let engine = choose_engine(workers);
            let base = ExploreOptions { record_traces: false, ..Default::default() };
            let off = engine.explore(&prog, objs, &base);
            let (on_opts, _tel) = with_sink(&base);
            let on = engine.explore(&prog, objs, &on_opts);
            let what = format!("{} ({}) @ {workers} worker(s)", l.name, path.display());
            assert!(off.same_results(&on), "{what}: telemetry changed the report");
            assert_eq!(off.terminated, on.terminated, "{what}: terminal configurations");
            assert_eq!(off.violations, on.violations, "{what}: violations");
            assert!(off.telemetry.is_none(), "{what}: snapshot without a sink");
            assert!(on.telemetry.is_some(), "{what}: no snapshot despite a sink");
            assert!(on.wall > std::time::Duration::ZERO, "{what}: wall clock not populated");
            assert!(off.wall > std::time::Duration::ZERO, "{what}: wall clock not populated");
        }
    }
}

#[test]
fn snapshot_counters_match_the_report() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    for (path, loaded) in entries {
        let l = loaded.unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        for workers in WORKERS {
            let engine = choose_engine(workers);
            let base = ExploreOptions { record_traces: false, ..Default::default() };
            let (opts, _tel) = with_sink(&base);
            let report = engine.explore(&prog, objs, &opts);
            let what = format!("{} ({}) @ {workers} worker(s)", l.name, path.display());
            assert_eq!(report.stop, StopReason::Complete, "{what}: corpus runs complete");
            let snap = report.telemetry.as_ref().unwrap_or_else(|| panic!("{what}: no snapshot"));
            assert_eq!(
                snap.get(Counter::States),
                report.states as u64,
                "{what}: snapshot states vs report states"
            );
            assert_eq!(
                snap.get(Counter::Transitions),
                report.transitions as u64,
                "{what}: snapshot transitions vs report transitions"
            );
            let per_worker: u64 = snap.worker_expansions.iter().sum();
            assert_eq!(
                per_worker,
                snap.get(Counter::Expansions),
                "{what}: per-worker expansion slots must sum to the total"
            );
            assert!(
                snap.worker_expansions.len() <= workers.max(1),
                "{what}: more expansion slots than workers"
            );
            assert!(
                snap.frontier_peak >= 1,
                "{what}: the initial state must have registered on the frontier gauge"
            );
        }
    }
}

#[test]
fn prune_counters_are_zero_without_reductions() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    for (path, loaded) in entries {
        let l = loaded.unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        for workers in WORKERS {
            let engine = choose_engine(workers);
            // Explicitly no POR, no DPOR, no symmetry.
            let base = ExploreOptions {
                record_traces: false,
                por: false,
                dpor: false,
                symmetry: false,
                ..Default::default()
            };
            let (opts, _tel) = with_sink(&base);
            let report = engine.explore(&prog, objs, &opts);
            let snap = report.telemetry.as_ref().expect("sink attached");
            let what = format!("{} ({}) @ {workers} worker(s)", l.name, path.display());
            for c in [
                Counter::SleepSetPrunes,
                Counter::PersistentSheds,
                Counter::SymmetryFolds,
                Counter::CapDegradations,
            ] {
                assert_eq!(snap.get(c), 0, "{what}: {} without its reduction", c.name());
            }
        }
    }
}

#[test]
fn reductions_do_register_on_their_counters() {
    // One representative with real interleaving (store buffering) so the
    // sleep-set and persistent-set counters actually fire.
    let l = litmus::load_file(corpus_dir().join("sb_rlx.litmus")).unwrap_or_else(|e| panic!("{e}"));
    let prog = compile(&l.prog);
    let objs = litmus::objects_for(&l);
    for workers in WORKERS {
        let engine = choose_engine(workers);
        let base =
            ExploreOptions { record_traces: false, por: true, dpor: true, ..Default::default() };
        let (opts, _tel) = with_sink(&base);
        let report = engine.explore(&prog, objs, &opts);
        let snap = report.telemetry.as_ref().expect("sink attached");
        assert!(
            snap.get(Counter::SleepSetPrunes) + snap.get(Counter::PersistentSheds) > 0,
            "@{workers} worker(s): DPOR on SB must prune or shed something"
        );
    }
}

#[test]
fn shared_sink_still_attaches_exact_per_run_deltas() {
    // The --progress configuration: one cumulative sink across a batch.
    let tel = Telemetry::shared();
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    let mut checked = 0usize;
    for (_path, loaded) in entries.into_iter().take(6) {
        let l = loaded.unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let opts = ExploreOptions {
            record_traces: false,
            telemetry: Some(Arc::clone(&tel)),
            ..Default::default()
        };
        let report = Engine::Sequential.explore(&prog, objs, &opts);
        let snap = report.telemetry.as_ref().expect("sink attached");
        assert_eq!(
            snap.get(Counter::States),
            report.states as u64,
            "{}: delta must isolate this run from the cumulative sink",
            l.name
        );
        checked += 1;
    }
    assert!(checked >= 2, "need at least two runs to exercise delta isolation");
    // The cumulative sink kept the totals (it is what --progress reads).
    assert!(tel.snapshot().get(Counter::States) > 0);
}
