//! Resilience-runtime integration tests: the budget/cancellation lattice,
//! worker-fault containment, checkpoint/resume, and the seeded chaos
//! differential, exercised end-to-end over the litmus gallery.
//!
//! The contract under test (see DESIGN.md, "Robustness runtime"): any
//! early stop — budget trip, cancellation, contained worker fault — yields
//! a report that is a **sound lower bound** on the reachable space with an
//! explicit non-`Complete` [`StopReason`], and a run that does complete
//! under injected faults is **bit-identical** to the unfaulted oracle.
//! Nothing in between: never silently wrong.

use proptest::prelude::*;
use rc11::check::{
    choose_engine, Budget, CancelToken, ChaosState, CheckpointOpts, Engine, ExploreOptions,
    FaultPlan, StopReason, Violation,
};
use rc11::lang::cfg::CfgProgram;
use rc11::lang::machine::{successors, Config, NoObjects, ObjectSemantics, StepOptions};
use rc11::lang::compile;
use rc11_litmus as litmus;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Replay `v`'s trace: every step must be a transition the semantics
/// really offers from the previous configuration, and the walk must end
/// at the violating configuration — a partial report's violations are
/// real counterexamples, not artifacts of stopping early.
fn assert_trace_replays(
    prog: &CfgProgram,
    objs: &(dyn ObjectSemantics + Sync),
    step: StepOptions,
    v: &Violation,
) {
    let trace = v.trace.as_ref().expect("violation must carry a trace");
    let mut cur = Config::initial(prog).canonical();
    for (i, (tid, next)) in trace.iter().enumerate() {
        let succs = successors(prog, objs, &cur, step);
        assert!(
            succs.iter().any(|(t, s)| t == tid && s.canonical() == *next),
            "step {i} by {tid:?} is not a real transition of the program"
        );
        cur = next.clone();
    }
    assert_eq!(cur, v.config, "trace must end at the violating configuration");
}

/// The chaos differential, gallery-wide: under seeded worker panics,
/// stalls and checkpoint-write failures, every run either matches the
/// unfaulted sequential oracle exactly or stops with an explicit
/// non-`Complete` reason and sound lower bounds.
#[test]
fn chaos_faults_never_silently_corrupt_gallery_results() {
    let base = ExploreOptions { record_traces: false, ..Default::default() };
    for l in litmus::all() {
        let (oracle, ostop, odead) = litmus::run_with_opts(&l, &Engine::Sequential, &base);
        assert!(ostop.is_complete(), "{}: oracle must complete", l.name);
        for seed in [1u64, 7, 42, 0x00C0_FFEE] {
            let plan = FaultPlan::from_seed(seed);
            let opts =
                ExploreOptions { chaos: Some(ChaosState::new(plan)), ..base.clone() };
            let (res, stop, dead) =
                litmus::run_with_opts(&l, &Engine::Parallel { workers: 2 }, &opts);
            if stop.is_complete() {
                assert_eq!(
                    (res.states, res.transitions, dead),
                    (oracle.states, oracle.transitions, odead),
                    "{} seed {seed} ({plan:?}): a complete faulted run must match the oracle",
                    l.name
                );
                assert_eq!(
                    res.observed, oracle.observed,
                    "{} seed {seed}: outcome set must match the oracle",
                    l.name
                );
            } else {
                assert!(
                    res.states <= oracle.states,
                    "{} seed {seed} ({stop}): partial states exceed the oracle",
                    l.name
                );
                assert!(
                    res.observed.is_subset(&oracle.observed),
                    "{} seed {seed} ({stop}): partial run observed an impossible outcome",
                    l.name
                );
            }
        }
    }
}

/// Checkpoint/resume, gallery-wide: interrupt a checkpointing sequential
/// run with a transition budget, then resume it without the budget — the
/// resumed report must be bit-identical to an uninterrupted run's, and a
/// complete run must clean up its checkpoint.
#[test]
fn interrupted_checkpointed_runs_resume_bit_identically() {
    let base = ExploreOptions { record_traces: false, ..Default::default() };
    let mut resumed_any = false;
    for l in litmus::all() {
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let oracle = Engine::Sequential.explore(&prog, objs, &base);
        assert!(oracle.stop.is_complete(), "{}: oracle must complete", l.name);

        let dir = std::env::temp_dir().join(format!("rc11-resume-{}", l.name));
        let _ = std::fs::remove_dir_all(&dir);
        let cap = (oracle.transitions / 2).max(1);
        let interrupted = ExploreOptions {
            budget: Budget { max_transitions: Some(cap), ..Default::default() },
            checkpoint: Some(CheckpointOpts { dir: dir.clone(), every: 1 }),
            ..base.clone()
        };
        let partial = Engine::Sequential.explore(&prog, objs, &interrupted);
        if partial.stop.is_complete() {
            // The whole space fit under the cap; nothing to resume.
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        }
        assert_eq!(partial.stop, StopReason::TransitionCap, "{}", l.name);
        assert!(
            partial.states <= oracle.states && partial.transitions <= oracle.transitions,
            "{}: interrupted run must be a lower bound",
            l.name
        );

        let resume = ExploreOptions {
            checkpoint: Some(CheckpointOpts::new(&dir)),
            ..base.clone()
        };
        let resumed = Engine::Sequential.explore(&prog, objs, &resume);
        assert!(
            resumed.same_results(&oracle),
            "{}: resumed run diverged from the uninterrupted one \
             ({}/{} states, {}/{} transitions, stop {} vs {})",
            l.name,
            resumed.states,
            oracle.states,
            resumed.transitions,
            oracle.transitions,
            resumed.stop,
            oracle.stop
        );
        assert!(
            !dir.join("rc11.ckpt").exists(),
            "{}: a complete run must remove its checkpoint",
            l.name
        );
        let _ = std::fs::remove_dir_all(&dir);
        resumed_any = true;
    }
    assert!(resumed_any, "at least one gallery program must exercise resume");
}

/// `Engine::check_invariant` honours budgets identically on both engines:
/// the same transition cap trips the same [`StopReason`] on each, partial
/// violations are genuine (members of the full run's violation set), and
/// the unbudgeted runs agree on the verdict.
#[test]
fn check_invariant_honours_budgets_identically_across_engines() {
    use rc11::lang::builder::*;
    // "x never holds 2" — violated after the second write, with an
    // interfering reader to widen the interleaving space.
    let mut p = ProgramBuilder::new("budget-invariant");
    let x = p.client_var("x", 0);
    let y = p.client_var("y", 0);
    p.add_thread(ThreadBuilder::new(), seq([wr(x, 1), wr(x, 2)]));
    let mut t2 = ThreadBuilder::new();
    let r = t2.reg("r");
    let s = t2.reg("s");
    p.add_thread(t2, seq([rd(r, x), wr(y, 1), rd(s, x)]));
    let prog = compile(&p.build());
    let pred = rc11_assert::dsl::pnot(rc11_assert::dsl::pobs(0, x, 2));

    let base = ExploreOptions::default();
    let seq_full = Engine::Sequential.check_invariant(&prog, &NoObjects, &base, &pred);
    let par_full = choose_engine(4).check_invariant(&prog, &NoObjects, &base, &pred);
    assert!(!seq_full.violations.is_empty(), "the invariant is genuinely violated");
    assert!(seq_full.stop.is_complete() && par_full.stop.is_complete());
    assert_eq!(par_full.violations.len(), seq_full.violations.len());

    let cap = (seq_full.transitions / 2).max(1);
    let capped = ExploreOptions {
        budget: Budget { max_transitions: Some(cap), ..Default::default() },
        ..base.clone()
    };
    let full_violations: Vec<&Config> =
        seq_full.violations.iter().map(|v| &v.config).collect();
    for (what, report) in [
        ("sequential", Engine::Sequential.check_invariant(&prog, &NoObjects, &capped, &pred)),
        ("parallel", choose_engine(4).check_invariant(&prog, &NoObjects, &capped, &pred)),
    ] {
        assert_eq!(
            report.stop,
            StopReason::TransitionCap,
            "{what}: the cap must trip the same stop reason"
        );
        assert!(
            report.states <= seq_full.states,
            "{what}: budgeted run must be a lower bound"
        );
        for v in &report.violations {
            assert!(
                full_violations.contains(&&v.config),
                "{what}: budgeted run reported a violation the full run never found"
            );
        }
    }
}

/// Degenerate budgets are still explicit verdicts, identically across
/// engines: an already-expired deadline and a one-byte memory budget each
/// stop before doing real work, with the matching [`StopReason`].
#[test]
fn degenerate_budgets_stop_immediately_with_the_right_verdict() {
    let l = &litmus::all()[0];
    let prog = compile(&l.prog);
    let objs = litmus::objects_for(l);
    let base = ExploreOptions { record_traces: false, ..Default::default() };
    let full = Engine::Sequential.explore(&prog, objs, &base);
    for (want, budget) in [
        (StopReason::Deadline, Budget { deadline: Some(Duration::ZERO), ..Default::default() }),
        (StopReason::MemBudget, Budget { max_mem_bytes: Some(1), ..Default::default() }),
    ] {
        for engine in [Engine::Sequential, Engine::Parallel { workers: 2 }] {
            let opts = ExploreOptions { budget, ..base.clone() };
            let report = engine.explore(&prog, objs, &opts);
            assert_eq!(report.stop, want, "{engine:?}");
            assert!(report.states <= full.states, "{engine:?}: still a lower bound");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Cooperative cancellation at arbitrary seeded points, both engines:
    /// a run whose token fired mid-exploration never claims `Complete`,
    /// its counts stay lower bounds, and every violation it did report
    /// replays step-by-step through `successors`. A token that never
    /// fired leaves the run bit-identical to an uncancelled one.
    #[test]
    fn cancelled_runs_are_sound_lower_bounds(
        li in 0usize..64,
        cancel_after in 1usize..300,
        parallel in any::<bool>(),
    ) {
        let gallery = litmus::all();
        let l = &gallery[li % gallery.len()];
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(l);
        let base = ExploreOptions::default();
        let check = |cfg: &Config, out: &mut Vec<String>| {
            if cfg.terminated(&prog) {
                out.push("terminal".to_string());
            }
        };
        let oracle = Engine::Sequential.explore_with(&prog, objs, &base, check);

        let token = CancelToken::new();
        let trigger = token.clone();
        let calls = AtomicUsize::new(0);
        let opts = ExploreOptions { cancel: token.clone(), ..base.clone() };
        let engine =
            if parallel { Engine::Parallel { workers: 2 } } else { Engine::Sequential };
        let report = engine.explore_with(&prog, objs, &opts, |cfg, out| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 == cancel_after {
                trigger.cancel();
            }
            check(cfg, out);
        });

        if token.is_cancelled() {
            prop_assert!(
                !report.stop.is_complete(),
                "{} ({engine:?}): a cancelled run must not claim Complete",
                l.name
            );
            prop_assert!(report.states <= oracle.states, "{}", l.name);
            prop_assert!(report.transitions <= oracle.transitions, "{}", l.name);
            for v in &report.violations {
                assert_trace_replays(&prog, objs, opts.step, v);
            }
        } else {
            // The token never fired: the walk saw no cancellation and
            // must agree with the oracle (parallel order aside).
            prop_assert_eq!(report.states, oracle.states, "{}", l.name);
            prop_assert_eq!(report.transitions, oracle.transitions, "{}", l.name);
            prop_assert_eq!(report.stop, StopReason::Complete);
        }
    }
}
