//! Experiments E3 and E7: the paper's proof outlines are valid.
//!
//! * Figure 3 (message passing via the synchronising stack) — every
//!   annotation holds at every reachable configuration;
//! * Figure 7 + Lemma 4 (lock-synchronisation client) — the full outline,
//!   including mutual exclusion and the `rl`-indexed observations, is
//!   valid; and the outline *fails* on mutated programs/annotations
//!   (negative controls showing the checker has teeth).

use rc11::figures;
use rc11::prelude::*;

#[test]
fn figure_3_outline_is_valid() {
    let f = figures::fig2();
    let outline = figures::fig3_outline(&f);
    let prog = compile(&f.prog);
    let report = check_outline(&prog, &AbstractObjects, &outline, &ExploreOptions::default());
    assert!(
        report.violations.is_empty() && !report.truncated(),
        "Figure 3 outline violated: {:?}",
        report.violations.iter().map(|v| (&v.kind, v.class)).collect::<Vec<_>>()
    );
    assert!(report.terminated > 0);
    assert_eq!(report.deadlocked, 0);
}

#[test]
fn figure_3_outline_fails_on_figure_1() {
    // The same annotations over the *unsynchronised* program must fail:
    // the conditional-observation precondition of the loop is unprovable
    // with a relaxed push.
    let f = figures::fig1();
    let outline = figures::fig3_outline(&f);
    let prog = compile(&f.prog);
    let report = check_outline(&prog, &AbstractObjects, &outline, &ExploreOptions::default());
    assert!(!report.violations.is_empty(), "relaxed MP must violate the Figure-3 outline");
}

#[test]
fn figure_7_outline_is_valid_lemma_4() {
    let f = figures::fig7();
    let outline = figures::fig7_outline(&f);
    let prog = compile(&f.prog);
    let report = check_outline(&prog, &AbstractObjects, &outline, &ExploreOptions::default());
    assert!(
        report.violations.is_empty() && !report.truncated(),
        "Figure 7 outline violated: {:?}",
        report
            .violations
            .iter()
            .map(|v| (&v.kind, v.class, v.mover))
            .collect::<Vec<_>>()
    );
    assert!(report.terminated > 0, "the client terminates");
    assert_eq!(report.deadlocked, 0, "the abstract lock never deadlocks this client");
}

#[test]
fn figure_7_postcondition_shape() {
    // Directly: all terminal states satisfy (r1, r2) ∈ {(0,0), (5,5)} and
    // both do occur (thread 2 first vs thread 1 first).
    let f = figures::fig7();
    let prog = compile(&f.prog);
    let report = Explorer::new(&prog, &AbstractObjects).explore();
    assert!(report.ok());
    let mut outcomes: Vec<(Val, Val)> = report
        .terminated
        .iter()
        .map(|c| (c.reg(1, f.r1), c.reg(1, f.r2)))
        .collect();
    outcomes.sort();
    outcomes.dedup();
    assert_eq!(
        outcomes,
        vec![(Val::Int(0), Val::Int(0)), (Val::Int(5), Val::Int(5))],
        "exactly the two atomic outcomes"
    );
}

#[test]
fn figure_7_rl_versions_are_1_or_3() {
    let f = figures::fig7();
    let prog = compile(&f.prog);
    let report = Explorer::new(&prog, &AbstractObjects).explore();
    let mut versions: Vec<Val> =
        report.terminated.iter().map(|c| c.reg(1, f.rl)).collect();
    versions.sort();
    versions.dedup();
    assert_eq!(versions, vec![Val::Int(1), Val::Int(3)]);
}

#[test]
fn figure_7_outline_fails_without_mutual_exclusion_annotation_on_broken_data() {
    // Mutate the program: thread 1 writes d2 ≠ 5. The outline's P4/Q2 must
    // now be violated somewhere.
    use rc11_lang::Com;
    let f = figures::fig7();
    let mut prog = f.prog.clone();
    // Replace thread 1's `d2 := 5` (label 3) with `d2 := 7`.
    fn mutate(c: &Com) -> Com {
        match c {
            Com::Labeled(3, inner) => {
                if let Com::Write { var, rel, .. } = **inner {
                    Com::Labeled(
                        3,
                        Box::new(Com::Write {
                            var,
                            exp: rc11_lang::Exp::Val(Val::Int(7)),
                            rel,
                        }),
                    )
                } else {
                    c.clone()
                }
            }
            Com::Seq(a, b) => Com::Seq(Box::new(mutate(a)), Box::new(mutate(b))),
            other => other.clone(),
        }
    }
    prog.threads[0].body = mutate(&prog.threads[0].body);
    let outline = figures::fig7_outline(&f);
    let compiled = compile(&prog);
    let report = check_outline(&compiled, &AbstractObjects, &outline, &ExploreOptions::default());
    assert!(!report.violations.is_empty(), "the mutated program must violate the outline");
}

#[test]
fn figure_7_interference_detected_for_naive_annotation() {
    // A deliberately non-interference-free annotation: thread 1 claims
    // [d1 = 0]2 stays true at its release point — thread 2 doesn't touch
    // d1, but thread 1 itself wrote it; swap roles: claim [d1 = 0] for
    // thread *2* while thread 1 writes it: a classic interference failure.
    let f = figures::fig7();
    let prog = compile(&f.prog);
    let outline = ProofOutline::new("naive", 2)
        // Thread 2 at its acquire point always sees d1 = 0 — false once
        // thread 1 has run: interference.
        .pre(1, 1, dobs(1, f.d1, 0));
    let report = check_outline(&prog, &AbstractObjects, &outline, &ExploreOptions::default());
    assert!(!report.violations.is_empty());
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.class == rc11::check::OgClass::Interference),
        "classification should include interference, got {:?}",
        report.violations.iter().map(|v| v.class).collect::<Vec<_>>()
    );
}
