//! Program-level property tests for the persistent-set layer of DPOR
//! (ablation A7). Where `crates/rc11-core/tests/por_props.rs` checks the
//! *primitive-transition* independence oracle behind sleep sets (A5),
//! these tests check the facts the persistent-set reduction rests on, at
//! the level the engines actually use them — compiled programs, machine
//! configurations, and [`future_footprints`]:
//!
//! * **containment** — a thread's *dynamic* step footprint at a reachable
//!   configuration conflicts with another's only if their *static future*
//!   footprints at those pcs conflict (the refinements that shrink
//!   dynamic access kinds — CAS failure reads, empty-`pop`/`deq` reads —
//!   only ever make the dynamic side smaller);
//! * **commutation** — a non-halted thread outside the persistent set
//!   commutes with every member: executing the two threads in either
//!   order from the same configuration reaches canonically equal
//!   successor multisets (so postponing the outsider loses nothing);
//! * **conflict absorption** — along replayed walk traces, every
//!   dynamically observed conflict with a persistent-set member is
//!   already inside the set: the threads DPOR backtracks into at a state
//!   are a superset of the threads its executed step actually conflicts
//!   with.
//!
//! Random programs come from the fuzz generator (no abstract objects);
//! a separate deterministic sweep runs the same checks over the
//! object-using corpus entries so the `Method` footprints (update covers,
//! the empty-`pop`/`deq` read refinement) get the same scrutiny.

use proptest::prelude::*;
use rc11::analyze::{future_footprints, FutureFootprints};
use rc11::check::gen::{generate, GenOptions};
use rc11::core::StepFootprint;
use rc11::lang::machine::{successors, thread_footprint, thread_successors, Config, NoObjects, ObjectSemantics, StepOptions};
use rc11::lang::{compile, CfgProgram};
use rc11_litmus as litmus;
use std::collections::HashMap;

fn corpus_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Deterministically walk `choices.len()` steps from the initial
/// configuration, returning every configuration visited (including the
/// endpoints). Each byte picks the next successor by index, so the same
/// input replays the same trace.
fn walk(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    choices: &[u8],
) -> Vec<(Config, Option<usize>)> {
    let opts = StepOptions::default();
    let mut cur = Config::initial(prog);
    let mut out = Vec::with_capacity(choices.len() + 1);
    for &c in choices {
        let succ = successors(prog, objs, &cur, opts);
        if succ.is_empty() {
            break;
        }
        let (tid, next) = succ[c as usize % succ.len()].clone();
        out.push((cur, Some(tid.0 as usize)));
        cur = next;
    }
    out.push((cur, None));
    out
}

/// The canonical successor multiset of "step thread `a`, then thread `b`"
/// from `s`.
fn two_step_multiset(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    s: &Config,
    a: usize,
    b: usize,
) -> HashMap<Config, usize> {
    let opts = StepOptions::default();
    let mut out: HashMap<Config, usize> = HashMap::new();
    for mid in thread_successors(prog, objs, s, a, opts) {
        for end in thread_successors(prog, objs, &mid, b, opts) {
            *out.entry(end.canonical()).or_default() += 1;
        }
    }
    out
}

/// The three A7 invariants at one reachable configuration. `moved` is the
/// thread the replayed trace actually stepped here (if any), for the
/// conflict-absorption check.
fn check_state(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    fps: &FutureFootprints,
    s: &Config,
    moved: Option<usize>,
) -> Result<(), String> {
    let n = prog.n_threads();
    let fp: Vec<StepFootprint> = (0..n).map(|t| thread_footprint(prog, s, t)).collect();
    let p = fps.persistent_mask(&s.pcs);
    let in_p = |t: usize| p & (1u64 << t) != 0;

    // Containment: dynamic conflicts are a subset of static future
    // conflicts at the same pcs.
    for t in 0..n {
        for w in t + 1..n {
            if fp[t].may_conflict(&fp[w]) && !fps.conflicts(t, s.pcs[t], w, s.pcs[w]) {
                return Err(format!(
                    "threads {t} and {w} conflict dynamically at pcs {:?} but their \
                     static future footprints are disjoint",
                    s.pcs
                ));
            }
        }
    }

    // Commutation: every non-halted outsider commutes with every member,
    // in both orders, as canonical successor multisets.
    for u in 0..n {
        if in_p(u) || fps.halted(u, &s.pcs) {
            continue;
        }
        for m in 0..n {
            if !in_p(m) {
                continue;
            }
            if fp[u].may_conflict(&fp[m]) {
                return Err(format!(
                    "outsider {u} dynamically conflicts with persistent member {m} \
                     at pcs {:?}",
                    s.pcs
                ));
            }
            let um = two_step_multiset(prog, objs, s, u, m);
            let mu = two_step_multiset(prog, objs, s, m, u);
            if um != mu {
                return Err(format!(
                    "outsider {u} and member {m} do not commute at pcs {:?} \
                     ({} vs {} two-step successors)",
                    s.pcs,
                    um.values().sum::<usize>(),
                    mu.values().sum::<usize>()
                ));
            }
        }
    }

    // Conflict absorption on the replayed edge: if the trace's executed
    // thread is a persistent member, every thread its current step
    // dynamically conflicts with is also a member — the set DPOR
    // backtracks into covers every conflict the step actually has.
    if let Some(t) = moved {
        if in_p(t) {
            for w in 0..n {
                if w != t && !fps.halted(w, &s.pcs) && fp[t].may_conflict(&fp[w]) && !in_p(w) {
                    return Err(format!(
                        "executed member {t} conflicts with {w}, which the \
                         persistent set {p:#b} omits at pcs {:?}",
                        s.pcs
                    ));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three invariants along random replayed traces of random
    /// generated programs.
    #[test]
    fn persistent_sets_are_sound_along_generated_walks(
        seed in any::<u64>(),
        choices in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        let g = generate(seed, &GenOptions { max_stmts: 4, ..Default::default() });
        let prog = compile(&g.to_program("props"));
        let fps = future_footprints(&prog).expect("generated programs are small");
        for (s, moved) in walk(&prog, &NoObjects, &choices) {
            if let Err(e) = check_state(&prog, &NoObjects, &fps, &s, moved) {
                prop_assert!(false, "{e}");
            }
        }
    }
}

/// The same invariants over the object-using corpus entries, so `Method`
/// step footprints (update covers, the empty-`pop`/`deq` read refinement)
/// face the same checks. Bounded breadth-first enumeration instead of
/// random walks: these state spaces are small and the edge cases (empty
/// ADTs, covered inserts) live near the frontier.
#[test]
fn persistent_sets_are_sound_on_object_corpus_entries() {
    for file in [
        "stackempty.litmus",
        "stacklifo.litmus",
        "queuefifo.litmus",
        "popspin2x2.litmus",
        "deqspin2x2.litmus",
    ] {
        let l = litmus::load_file(corpus_dir().join(file)).unwrap_or_else(|e| panic!("{e}"));
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let fps = future_footprints(&prog).expect("corpus entries are small");
        let opts = StepOptions::default();
        let mut seen: HashMap<Config, ()> = HashMap::new();
        let mut frontier = vec![Config::initial(&prog)];
        let mut edges = 0usize;
        while let Some(cur) = frontier.pop() {
            if seen.insert(cur.canonical(), ()).is_some() || seen.len() > 2000 {
                continue;
            }
            for (tid, next) in successors(&prog, objs, &cur, opts) {
                edges += 1;
                check_state(&prog, objs, &fps, &cur, Some(tid.0 as usize))
                    .unwrap_or_else(|e| panic!("{file}: {e}"));
                frontier.push(next);
            }
        }
        assert!(edges > 0, "{file}: no transitions enumerated");
    }
}

/// Non-vacuity control: on a program with two disjoint conflict
/// components the persistent set at the initial state is a *strict*
/// subset of the live threads — the reduction the proptests license
/// actually happens.
#[test]
fn persistent_sets_do_reduce_disjoint_components() {
    let l = litmus::load_file(corpus_dir().join("ttas2x2.litmus")).unwrap_or_else(|e| panic!("{e}"));
    let prog = compile(&l.prog);
    let fps = future_footprints(&prog).expect("small program");
    let init = Config::initial(&prog);
    let p = fps.persistent_mask(&init.pcs);
    assert!(p == 0b0011 || p == 0b1100, "one TTAS pair, not all four threads: {p:#b}");
}
