//! The cross-engine differential suite.
//!
//! The sequential explorer is the reference oracle; the batched parallel
//! engine must agree with it **exactly** — states, transitions, terminal
//! counts and violation sets — on every litmus-gallery program and on the
//! Figure-3/Figure-7 proof-outline programs, at 1, 2, 4 and 8 workers.
//! Any divergence is a bug in one of the engines (most likely a lost or
//! double-counted state in the parallel one), which is why CI also runs
//! this suite under the optimized release build the benches use.
//!
//! The suite is additionally **fingerprint-differential**: every engine
//! must produce the identical report with zero-rebuild canonical
//! fingerprint dedup ([`ExploreOptions::fingerprint`], the default) and
//! with the legacy materialised-canonical dedup it replaced. The
//! fingerprint path's collision-bucket fallback makes its membership
//! decisions provably equal, and this suite holds it to that, gallery-wide
//! and at every worker count.

use rc11::figures;
use rc11::prelude::*;
use rc11_check::fxhash::FxHashMap;
use rc11_check::OgClass;
use rc11_litmus as litmus;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Violations keyed by (description, configuration): both engines call the
/// check exactly once per distinct state, so these are sets, and they must
/// match elementwise.
fn violation_set(report: &EngineReport) -> FxHashMap<(String, Config), usize> {
    let mut set = FxHashMap::default();
    for v in &report.violations {
        *set.entry((v.what.clone(), v.config.clone())).or_insert(0) += 1;
    }
    set
}

fn assert_reports_agree(name: &str, workers: usize, seq: &EngineReport, par: &EngineReport) {
    assert_eq!(par.states, seq.states, "{name} @ {workers} workers: states");
    assert_eq!(par.transitions, seq.transitions, "{name} @ {workers} workers: transitions");
    assert_eq!(
        par.terminated.len(),
        seq.terminated.len(),
        "{name} @ {workers} workers: terminated"
    );
    assert_eq!(
        par.deadlocked.len(),
        seq.deadlocked.len(),
        "{name} @ {workers} workers: deadlocked"
    );
    assert_eq!(par.truncated(), seq.truncated(), "{name} @ {workers} workers: truncated");
    assert_eq!(
        violation_set(par),
        violation_set(seq),
        "{name} @ {workers} workers: violation sets"
    );
}

/// Every litmus-gallery program: full report parity at every worker count,
/// with a violation-producing check (flag every terminal configuration) so
/// violation-set parity is exercised on every program, not just the ones
/// with interesting invariants.
#[test]
fn litmus_gallery_reports_agree_across_engines() {
    for l in litmus::all() {
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let opts = ExploreOptions { record_traces: false, ..Default::default() };
        let check = |cfg: &Config, out: &mut Vec<String>| {
            if cfg.terminated(&prog) {
                out.push("terminal".to_string());
            }
        };
        let seq = Engine::Sequential.explore_with(&prog, objs, &opts, check);
        assert!(!seq.terminated.is_empty(), "{}: gallery programs terminate", l.name);
        assert_eq!(
            seq.violations.len(),
            seq.terminated.len(),
            "{}: one flag per terminal state",
            l.name
        );
        for workers in WORKERS {
            let par = Engine::Parallel { workers }.explore_with(&prog, objs, &opts, check);
            assert_reports_agree(&l.name, workers, &seq, &par);
        }
    }
}

/// The fingerprint-on/off differential: on the whole gallery, the
/// materialised-canonical dedup path and the fingerprint path must produce
/// byte-identical reports — states, transitions, terminal counts and
/// violation sets — under the sequential engine and under the parallel
/// engine at every worker count. This is the soundness gate for ablation
/// A4: rekeying the visited structures must not change a single verdict.
#[test]
fn fingerprint_and_materialised_dedup_reports_agree() {
    for l in litmus::all() {
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let check = |cfg: &Config, out: &mut Vec<String>| {
            if cfg.terminated(&prog) {
                out.push("terminal".to_string());
            }
        };
        let exact_opts = ExploreOptions {
            record_traces: false,
            fingerprint: false,
            ..Default::default()
        };
        let fp_opts = ExploreOptions { fingerprint: true, ..exact_opts.clone() };
        let oracle = Engine::Sequential.explore_with(&prog, objs, &exact_opts, check);

        let seq_fp = Engine::Sequential.explore_with(&prog, objs, &fp_opts, check);
        assert_reports_agree(&l.name, 1, &oracle, &seq_fp);

        for workers in WORKERS {
            for (mode, opts) in [("fp", &fp_opts), ("exact", &exact_opts)] {
                let par = Engine::Parallel { workers }.explore_with(&prog, objs, opts, check);
                assert_reports_agree(&format!("{} [{mode}]", l.name), workers, &oracle, &par);
            }
        }
    }
}

/// The same differential for the outline checker: both dedup modes agree
/// on the full outline report (including assertion-evaluation counts) for
/// a valid outline and for one with violations, under both engines.
#[test]
fn fingerprint_and_materialised_outline_reports_agree() {
    for (name, f) in [("fig3-on-fig2", figures::fig2()), ("fig3-on-fig1", figures::fig1())] {
        let outline = figures::fig3_outline(&f);
        let prog = compile(&f.prog);
        let exact_opts = ExploreOptions { fingerprint: false, ..Default::default() };
        let fp_opts = ExploreOptions::default();
        let oracle =
            check_outline_with(&prog, &AbstractObjects, &outline, &exact_opts, &Engine::Sequential);
        let seq_fp =
            check_outline_with(&prog, &AbstractObjects, &outline, &fp_opts, &Engine::Sequential);
        assert_outline_reports_agree(name, 1, &oracle, &seq_fp);
        for workers in WORKERS {
            for opts in [&fp_opts, &exact_opts] {
                let par = check_outline_with(
                    &prog,
                    &AbstractObjects,
                    &outline,
                    opts,
                    &Engine::Parallel { workers },
                );
                assert_outline_reports_agree(name, workers, &oracle, &par);
            }
        }
    }
}

/// Every litmus verdict (observed-outcome set) matches between engines,
/// through the gallery's own engine-parametric runner.
#[test]
fn litmus_gallery_verdicts_agree_across_engines() {
    for l in litmus::all() {
        let seq = litmus::run_with(&l, &Engine::Sequential);
        assert!(seq.pass, "{}: sequential verdict must already be exact", l.name);
        for workers in WORKERS {
            let par = litmus::run_with(&l, &Engine::Parallel { workers });
            assert_eq!(
                par.observed, seq.observed,
                "{} @ {workers} workers: outcome sets diverge",
                l.name
            );
            assert_eq!(par.states, seq.states, "{} @ {workers} workers: states", l.name);
            assert!(par.pass, "{} @ {workers} workers: verdict", l.name);
        }
    }
}

/// Outline reports keyed by (annotation, configuration) → strongest class.
/// The strongest classification is a max over all incoming edges, so it is
/// deterministic even though the parallel engine visits edges in arbitrary
/// order; only `mover` tie-breaks may differ.
fn outline_violation_map(
    report: &OutlineReport,
) -> FxHashMap<(rc11::check::OutlineKind, Config), OgClass> {
    let mut map = FxHashMap::default();
    for v in &report.violations {
        let prev = map.insert((v.kind.clone(), v.config.clone()), v.class);
        assert!(prev.is_none(), "duplicate (kind, config) violation entry");
    }
    map
}

fn assert_outline_reports_agree(
    name: &str,
    workers: usize,
    seq: &OutlineReport,
    par: &OutlineReport,
) {
    assert_eq!(par.states, seq.states, "{name} @ {workers} workers: states");
    assert_eq!(par.transitions, seq.transitions, "{name} @ {workers} workers: transitions");
    assert_eq!(par.checks, seq.checks, "{name} @ {workers} workers: assertion evaluations");
    assert_eq!(par.terminated, seq.terminated, "{name} @ {workers} workers: terminated");
    assert_eq!(par.deadlocked, seq.deadlocked, "{name} @ {workers} workers: deadlocked");
    assert_eq!(par.truncated(), seq.truncated(), "{name} @ {workers} workers: truncated");
    assert_eq!(
        outline_violation_map(par),
        outline_violation_map(seq),
        "{name} @ {workers} workers: violation maps"
    );
}

fn check_outline_agreement(name: &str, prog: &CfgProgram, outline: &rc11::assert::ProofOutline) {
    let opts = ExploreOptions::default();
    let seq = check_outline_with(prog, &AbstractObjects, outline, &opts, &Engine::Sequential);
    for workers in WORKERS {
        let par =
            check_outline_with(prog, &AbstractObjects, outline, &opts, &Engine::Parallel { workers });
        assert_outline_reports_agree(name, workers, &seq, &par);
    }
}

/// The valid Figure-3 outline over Figure 2's program: both engines find
/// zero violations and identical statistics.
#[test]
fn fig3_outline_on_fig2_agrees_across_engines() {
    let f = figures::fig2();
    let outline = figures::fig3_outline(&f);
    let prog = compile(&f.prog);
    let seq = check_outline_with(
        &prog,
        &AbstractObjects,
        &outline,
        &ExploreOptions::default(),
        &Engine::Sequential,
    );
    assert!(seq.valid(), "Figure-3 outline is valid sequentially");
    check_outline_agreement("fig3-on-fig2", &prog, &outline);
}

/// The Figure-3 outline over the *unsynchronised* Figure-1 program: both
/// engines find the same non-empty violation map, class by class.
#[test]
fn fig3_outline_on_fig1_violations_agree_across_engines() {
    let f = figures::fig1();
    let outline = figures::fig3_outline(&f);
    let prog = compile(&f.prog);
    let seq = check_outline_with(
        &prog,
        &AbstractObjects,
        &outline,
        &ExploreOptions::default(),
        &Engine::Sequential,
    );
    assert!(!seq.violations.is_empty(), "relaxed MP must violate the Figure-3 outline");
    check_outline_agreement("fig3-on-fig1", &prog, &outline);
}

/// The full Figure-7 outline (Lemma 4): valid under both engines with
/// identical statistics.
#[test]
fn fig7_outline_agrees_across_engines() {
    let f = figures::fig7();
    let outline = figures::fig7_outline(&f);
    let prog = compile(&f.prog);
    let seq = check_outline_with(
        &prog,
        &AbstractObjects,
        &outline,
        &ExploreOptions::default(),
        &Engine::Sequential,
    );
    assert!(seq.valid(), "Figure-7 outline is valid sequentially");
    check_outline_agreement("fig7", &prog, &outline);
}

/// A deliberately interference-unsound annotation on Figure 7: both
/// engines agree on the violation map, including the Interference
/// classifications.
#[test]
fn fig7_naive_annotation_violations_agree_across_engines() {
    use rc11::assert::ProofOutline;
    let f = figures::fig7();
    let prog = compile(&f.prog);
    let outline = ProofOutline::new("naive", 2).pre(1, 1, dobs(1, f.d1, 0));
    let seq = check_outline_with(
        &prog,
        &AbstractObjects,
        &outline,
        &ExploreOptions::default(),
        &Engine::Sequential,
    );
    assert!(
        seq.violations.iter().any(|v| v.class == OgClass::Interference),
        "the naive annotation must fail by interference"
    );
    check_outline_agreement("fig7-naive", &prog, &outline);
}

/// Terminal configurations as a multiset (both engines push canonical
/// forms; order is engine-dependent).
fn config_multiset(cfgs: &[Config]) -> FxHashMap<Config, usize> {
    let mut set = FxHashMap::default();
    for c in cfgs {
        *set.entry(c.clone()).or_insert(0) += 1;
    }
    set
}

/// Ablation A5: sleep-set partial-order reduction prunes **transitions
/// only** — the visited state count, the terminal and deadlock multisets
/// and the violation set must be bit-identical to the unreduced search,
/// under both engines, at every worker count, in both dedup modes. The
/// transition count must never grow, and must strictly shrink somewhere
/// across the gallery (the reduction is real, not vacuous).
#[test]
fn por_prunes_transitions_but_preserves_reports() {
    let mut full_total = 0usize;
    let mut por_total = 0usize;
    for l in litmus::all() {
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let check = |cfg: &Config, out: &mut Vec<String>| {
            if cfg.terminated(&prog) {
                out.push("terminal".to_string());
            }
        };
        let base = ExploreOptions { record_traces: false, ..Default::default() };
        let oracle = Engine::Sequential.explore_with(&prog, objs, &base, check);
        full_total += oracle.transitions;

        for (mode, fingerprint) in [("fp", true), ("exact", false)] {
            let opts = ExploreOptions { por: true, fingerprint, ..base.clone() };
            let seq = Engine::Sequential.explore_with(&prog, objs, &opts, check);
            assert_eq!(seq.states, oracle.states, "{} [{mode}]: POR lost states", l.name);
            assert_eq!(
                config_multiset(&seq.terminated),
                config_multiset(&oracle.terminated),
                "{} [{mode}]: POR changed the terminal set",
                l.name
            );
            assert_eq!(
                config_multiset(&seq.deadlocked),
                config_multiset(&oracle.deadlocked),
                "{} [{mode}]: POR changed the deadlock set",
                l.name
            );
            assert_eq!(
                violation_set(&seq),
                violation_set(&oracle),
                "{} [{mode}]: POR changed the violation set",
                l.name
            );
            assert!(
                seq.transitions <= oracle.transitions,
                "{} [{mode}]: POR generated more transitions ({} > {})",
                l.name,
                seq.transitions,
                oracle.transitions
            );
            assert!(!seq.truncated(), "{} [{mode}]", l.name);
            if fingerprint {
                por_total += seq.transitions;
            }

            for workers in WORKERS {
                let par = Engine::Parallel { workers }.explore_with(&prog, objs, &opts, check);
                assert_eq!(
                    par.states, oracle.states,
                    "{} [{mode}] @ {workers} workers: POR lost states",
                    l.name
                );
                assert_eq!(
                    config_multiset(&par.terminated),
                    config_multiset(&oracle.terminated),
                    "{} [{mode}] @ {workers} workers: terminal set",
                    l.name
                );
                assert_eq!(
                    config_multiset(&par.deadlocked),
                    config_multiset(&oracle.deadlocked),
                    "{} [{mode}] @ {workers} workers: deadlock set",
                    l.name
                );
                assert_eq!(
                    violation_set(&par),
                    violation_set(&oracle),
                    "{} [{mode}] @ {workers} workers: violation set",
                    l.name
                );
                assert!(
                    par.transitions <= oracle.transitions,
                    "{} [{mode}] @ {workers} workers: more transitions under POR",
                    l.name
                );
                assert!(!par.truncated(), "{} [{mode}] @ {workers} workers", l.name);
            }
        }
    }
    assert!(
        por_total < full_total,
        "POR must strictly reduce transitions somewhere across the gallery \
         ({por_total} vs {full_total})"
    );
}

/// Ablation A6: thread-symmetry reduction explores one representative per
/// orbit, so the state count may only shrink — while the orbit expansion
/// of terminals, deadlocks and check callbacks must keep the terminal and
/// deadlock multisets and the violation set bit-identical to the
/// unreduced search, under both engines, at every worker count, in both
/// dedup modes, alone and composed with POR. The gallery's `2RMW` entry
/// (two threads FAI-ing one location, identical modulo register renaming)
/// must shed states strictly — the reduction is real, not vacuous.
#[test]
fn symmetry_preserves_reports_and_sheds_states() {
    let mut reduced_somewhere = false;
    for l in litmus::all() {
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let check = |cfg: &Config, out: &mut Vec<String>| {
            if cfg.terminated(&prog) {
                out.push("terminal".to_string());
            }
        };
        let base = ExploreOptions { record_traces: false, ..Default::default() };
        let oracle = Engine::Sequential.explore_with(&prog, objs, &base, check);

        for (mode, fingerprint) in [("fp", true), ("exact", false)] {
            for por in [false, true] {
                let opts = ExploreOptions { symmetry: true, por, fingerprint, ..base.clone() };
                let tag = |workers: usize| {
                    format!("{} [{mode}, por {por}] @ {workers} workers", l.name)
                };
                let seq = Engine::Sequential.explore_with(&prog, objs, &opts, check);
                if seq.states < oracle.states {
                    reduced_somewhere = true;
                }
                let assert_sym = |name: &str, r: &EngineReport| {
                    assert!(
                        r.states <= oracle.states,
                        "{name}: symmetry grew the state count ({} > {})",
                        r.states,
                        oracle.states
                    );
                    assert!(
                        r.transitions <= oracle.transitions,
                        "{name}: symmetry generated more transitions"
                    );
                    assert_eq!(
                        config_multiset(&r.terminated),
                        config_multiset(&oracle.terminated),
                        "{name}: orbit expansion changed the terminal multiset"
                    );
                    assert_eq!(
                        config_multiset(&r.deadlocked),
                        config_multiset(&oracle.deadlocked),
                        "{name}: orbit expansion changed the deadlock multiset"
                    );
                    assert_eq!(
                        violation_set(r),
                        violation_set(&oracle),
                        "{name}: symmetry changed the violation set"
                    );
                    assert!(!r.truncated(), "{name}: truncated");
                };
                assert_sym(&tag(1), &seq);
                for workers in WORKERS {
                    let par = Engine::Parallel { workers }.explore_with(&prog, objs, &opts, check);
                    assert_sym(&tag(workers), &par);
                }
            }
        }
        if l.name == "2RMW" {
            let sym = Engine::Sequential.explore(
                &prog,
                objs,
                &ExploreOptions { symmetry: true, ..base.clone() },
            );
            assert!(
                sym.states < oracle.states,
                "2RMW is fully symmetric; reduction must be real ({} vs {})",
                sym.states,
                oracle.states
            );
        }
    }
    assert!(reduced_somewhere, "symmetry must shed states somewhere across the gallery");
}

/// Ablation A7: persistent-set DPOR postpones whole threads, so both the
/// state and the transition count may shrink — while the terminal and
/// deadlock multisets and the violation set must stay bit-identical to
/// the unreduced search (every terminal and deadlock is still visited,
/// and visited exactly once), under both engines, at every worker count,
/// in both dedup modes, alone and composed with symmetry. Strict
/// shedding is asserted corpus-side (`dpor_corpus_entries_shed_at_least_
/// 5x_transitions`): the gallery's programs are mostly single-component,
/// where persistent sets legitimately degenerate to the full thread set.
#[test]
fn dpor_preserves_reports_and_sheds_work() {
    for l in litmus::all() {
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let check = |cfg: &Config, out: &mut Vec<String>| {
            if cfg.terminated(&prog) {
                out.push("terminal".to_string());
            }
        };
        let base = ExploreOptions { record_traces: false, ..Default::default() };
        let oracle = Engine::Sequential.explore_with(&prog, objs, &base, check);

        for (mode, fingerprint) in [("fp", true), ("exact", false)] {
            for symmetry in [false, true] {
                let opts = ExploreOptions { dpor: true, symmetry, fingerprint, ..base.clone() };
                let tag = |workers: usize| {
                    format!("{} [{mode}, sym {symmetry}] @ {workers} workers", l.name)
                };
                let assert_dpor = |name: &str, r: &EngineReport| {
                    assert!(
                        r.states <= oracle.states,
                        "{name}: DPOR grew the state count ({} > {})",
                        r.states,
                        oracle.states
                    );
                    assert!(
                        r.transitions <= oracle.transitions,
                        "{name}: DPOR generated more transitions"
                    );
                    assert_eq!(
                        config_multiset(&r.terminated),
                        config_multiset(&oracle.terminated),
                        "{name}: DPOR changed the terminal multiset"
                    );
                    assert_eq!(
                        config_multiset(&r.deadlocked),
                        config_multiset(&oracle.deadlocked),
                        "{name}: DPOR changed the deadlock multiset"
                    );
                    assert_eq!(
                        violation_set(r),
                        violation_set(&oracle),
                        "{name}: DPOR changed the violation set"
                    );
                    assert!(!r.truncated(), "{name}: truncated");
                };
                let seq = Engine::Sequential.explore_with(&prog, objs, &opts, check);
                assert_dpor(&tag(1), &seq);
                for workers in WORKERS {
                    let par = Engine::Parallel { workers }.explore_with(&prog, objs, &opts, check);
                    assert_dpor(&tag(workers), &par);
                }
            }
        }
    }
}

/// DPOR violations still carry replayable traces: every step is a real
/// transition and the trace ends at the violating configuration. Paths
/// through a persistent-set-pruned graph may differ from the unreduced
/// search's, but each edge must exist in the *unreduced* transition
/// relation — the reduction prunes which successors are expanded, never
/// invents steps.
#[test]
fn dpor_violation_traces_replay() {
    let l = litmus::sb_ra();
    let prog = compile(&l.prog);
    let check = |cfg: &Config, out: &mut Vec<String>| {
        if cfg.terminated(&prog)
            && l.observe.iter().all(|&(t, r)| cfg.reg(t, r) == rc11::core::Val::Int(0))
        {
            out.push("both zero".to_string());
        }
    };
    for symmetry in [false, true] {
        let opts = ExploreOptions { dpor: true, symmetry, ..Default::default() };
        for engine in [Engine::Sequential, Engine::Parallel { workers: 4 }] {
            let report = engine.explore_with(&prog, &NoObjects, &opts, check);
            assert!(
                !report.violations.is_empty(),
                "{engine:?} (sym {symmetry}): SB weak outcome reachable"
            );
            for v in &report.violations {
                let trace = v.trace.as_ref().expect("traces recorded");
                let mut cur = Config::initial(&prog).canonical();
                for (tid, next) in trace {
                    let succs =
                        rc11::lang::machine::successors(&prog, &NoObjects, &cur, opts.step);
                    assert!(
                        succs.iter().any(|(t, s)| t == tid && s.canonical() == *next),
                        "{engine:?} (sym {symmetry}): DPOR trace step by {tid:?} \
                         is not a real transition"
                    );
                    cur = next.clone();
                }
                assert_eq!(
                    cur, v.config,
                    "{engine:?} (sym {symmetry}): trace must end at the violation"
                );
            }
        }
    }
}

/// Under the sequential engine, symmetry-reduced violation traces are
/// exactly replayable — for the orbit representative *and* for every
/// expanded orbit member: the per-edge permutations compose into a
/// concrete interleaving of the original program (the automorphisms fix
/// the initial state). The parallel engine's member traces are
/// permutations of a representative chain (valid modulo symmetry), so
/// only the sequential engine is held to step-exact replay here.
#[test]
fn symmetry_violation_traces_replay_sequentially() {
    // 2RMW: fully symmetric, so both the representative and a nontrivial
    // orbit member produce violations; SB+ra: trivial symmetry (the spec
    // is empty), pinning the identity path.
    for l in [litmus::two_rmw(), litmus::sb_ra()] {
        let prog = compile(&l.prog);
        for por in [false, true] {
            let opts = ExploreOptions { symmetry: true, por, ..Default::default() };
            let check = |cfg: &Config, out: &mut Vec<String>| {
                if cfg.terminated(&prog) {
                    out.push("terminal".to_string());
                }
            };
            let report = Engine::Sequential.explore_with(&prog, &NoObjects, &opts, check);
            assert!(!report.violations.is_empty(), "{}: terminals exist", l.name);
            assert_eq!(
                report.violations.len(),
                l.expected.len(),
                "{} (por {por}): orbit expansion must flag every terminal exactly once",
                l.name
            );
            for v in &report.violations {
                let trace = v.trace.as_ref().expect("traces recorded");
                let mut cur = Config::initial(&prog).canonical();
                for (tid, next) in trace {
                    let succs =
                        rc11::lang::machine::successors(&prog, &NoObjects, &cur, opts.step);
                    assert!(
                        succs.iter().any(|(t, s)| t == tid && s.canonical() == *next),
                        "{} (por {por}): symmetry trace step by {tid:?} is not a real transition",
                        l.name
                    );
                    cur = next.clone();
                }
                assert_eq!(
                    cur, v.config,
                    "{} (por {por}): trace must end at the violation",
                    l.name
                );
            }
        }
    }
}

/// Satellite of A6: beyond 64 threads the sleep masks cannot represent
/// the thread set, so `--por` must *fall back* to unreduced search (and
/// say so via `EngineReport::por_fallback`) instead of asserting. The 64
/// empty threads compile to zero instructions, so the state space is the
/// two real threads' — the fallback is observable without a blow-up.
#[test]
fn por_falls_back_beyond_64_threads() {
    let mut p = ProgramBuilder::new("Wide");
    let x = p.client_var("x", 0);
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(x, 1)]));
    let mut t2 = ThreadBuilder::new();
    let r = t2.reg("r");
    p.add_thread(t2, seq([rd(r, x)]));
    for _ in 0..64 {
        p.add_thread(ThreadBuilder::new(), seq([]));
    }
    let prog = compile(&p.build());
    assert!(prog.n_threads() > 64);

    let base = ExploreOptions { record_traces: false, ..Default::default() };
    let full = Engine::Sequential.explore(&prog, &NoObjects, &base);
    assert!(!full.por_fallback(), "fallback only reports when POR was requested");
    for engine in [Engine::Sequential, Engine::Parallel { workers: 4 }] {
        for opts in
            [ExploreOptions { por: true, ..base.clone() }, ExploreOptions { dpor: true, ..base.clone() }]
        {
            let report = engine.explore(&prog, &NoObjects, &opts);
            assert!(report.por_fallback(), "{engine:?}: must report the fallback");
            assert_eq!(report.states, full.states, "{engine:?}: fallback is unreduced");
            assert_eq!(report.transitions, full.transitions, "{engine:?}: fallback is unreduced");
            assert_eq!(report.terminated.len(), full.terminated.len(), "{engine:?}: terminals");
        }
    }
}

/// POR violations still carry replayable traces: every step is a real
/// transition and the trace ends at the violating configuration (paths may
/// differ from the unreduced search — they are valid, not canonical).
#[test]
fn por_violation_traces_replay() {
    let l = litmus::sb_ra();
    let prog = compile(&l.prog);
    let opts = ExploreOptions { por: true, ..Default::default() };
    let check = |cfg: &Config, out: &mut Vec<String>| {
        if cfg.terminated(&prog)
            && l.observe.iter().all(|&(t, r)| cfg.reg(t, r) == rc11::core::Val::Int(0))
        {
            out.push("both zero".to_string());
        }
    };
    for engine in [Engine::Sequential, Engine::Parallel { workers: 4 }] {
        let report = engine.explore_with(&prog, &NoObjects, &opts, check);
        assert!(!report.violations.is_empty(), "{engine:?}: SB weak outcome reachable");
        for v in &report.violations {
            let trace = v.trace.as_ref().expect("traces recorded");
            let mut cur = Config::initial(&prog).canonical();
            for (tid, next) in trace {
                let succs = rc11::lang::machine::successors(&prog, &NoObjects, &cur, opts.step);
                assert!(
                    succs.iter().any(|(t, s)| t == tid && s.canonical() == *next),
                    "{engine:?}: POR trace step by {tid:?} is not a real transition"
                );
                cur = next.clone();
            }
            assert_eq!(cur, v.config, "{engine:?}: trace must end at the violation");
        }
    }
}

/// Cap parity: when `max_states` cuts a run short, both engines must
/// return the same verdict — `truncated == true` and `states ==
/// max_states` — even though the parallel engine's cap check is racy (its
/// report reconciles any overshoot to the sequential oracle's verdict).
/// Transition and terminal counts legitimately differ under truncation
/// (the engines drop different states), so only the verdict is compared.
#[test]
fn truncated_runs_agree_on_the_verdict_across_engines() {
    for l in litmus::all() {
        let prog = compile(&l.prog);
        let objs = litmus::objects_for(&l);
        let full = Engine::Sequential.explore(
            &prog,
            objs,
            &ExploreOptions { record_traces: false, ..Default::default() },
        );
        // A cap strictly inside the reachable space forces truncation.
        for cap in [1usize, full.states / 2, full.states - 1] {
            let cap = cap.max(1);
            if cap >= full.states {
                continue;
            }
            let opts = ExploreOptions {
                record_traces: false,
                max_states: cap,
                ..Default::default()
            };
            let seq = Engine::Sequential.explore(&prog, objs, &opts);
            assert!(seq.truncated(), "{} cap {cap}: sequential must truncate", l.name);
            assert_eq!(seq.states, cap, "{} cap {cap}: sequential states", l.name);
            for workers in WORKERS {
                let par = Engine::Parallel { workers }.explore(&prog, objs, &opts);
                assert!(par.truncated(), "{} cap {cap} @ {workers} workers: truncated", l.name);
                assert_eq!(par.states, cap, "{} cap {cap} @ {workers} workers: states", l.name);
            }
        }
    }
}

/// Trace parity in kind: with traces on, both engines attach a trace to
/// every violation and each trace replays step by step through
/// `successors`. Both engines record the *first* parent that discovered a
/// state — a valid path from the initial configuration, not a shortest
/// one — so validity and endpoints are compared, not lengths.
#[test]
fn violation_traces_replay_under_both_engines() {
    let l = litmus::sb_ra();
    let prog = compile(&l.prog);
    let opts = ExploreOptions::default();
    let check = |cfg: &Config, out: &mut Vec<String>| {
        if cfg.terminated(&prog)
            && l.observe.iter().all(|&(t, r)| cfg.reg(t, r) == rc11::core::Val::Int(0))
        {
            out.push("both zero".to_string());
        }
    };
    for engine in [Engine::Sequential, Engine::Parallel { workers: 4 }] {
        let report = engine.explore_with(&prog, &NoObjects, &opts, check);
        assert!(!report.violations.is_empty(), "{engine:?}: SB weak outcome reachable");
        for v in &report.violations {
            let trace = v.trace.as_ref().expect("traces recorded");
            let mut cur = Config::initial(&prog).canonical();
            for (tid, next) in trace {
                let succs = rc11::lang::machine::successors(&prog, &NoObjects, &cur, opts.step);
                assert!(
                    succs.iter().any(|(t, s)| t == tid && s.canonical() == *next),
                    "{engine:?}: trace step by {tid:?} is not a real transition"
                );
                cur = next.clone();
            }
            assert_eq!(cur, v.config, "{engine:?}: trace must end at the violation");
        }
    }
}
