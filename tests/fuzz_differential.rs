//! Seeded generative differential fuzzing as part of the ordinary test
//! suite.
//!
//! A bounded fixed-seed run executes on every `cargo test`; the heavy
//! sweep is `#[ignore]`d and runs on demand
//! (`cargo test --release -- --ignored`) or from the CLI
//! (`rc11 fuzz --iters N`). Every generated program is checked for:
//! sequential-vs-parallel report parity, fingerprint-on/off parity, the
//! `.litmus` printer/parser round-trip, POR-on/off report parity (states,
//! terminals and outcome sets preserved, transitions never grow — both
//! engines), persistent-set DPOR parity (states and transitions bounded
//! above, terminal/deadlock counts and outcome sets preserved exactly,
//! both engines, composed with symmetry), and sampler soundness
//! (`random_walk` terminal outcomes ⊆ the exhaustive outcome set).

use rc11::check::fuzz::{diff_one, fuzz, DiffOptions, DiffVerdict};
use rc11::check::gen::{generate, GenOptions};

fn fail_message(report: &rc11::check::fuzz::FuzzReport) -> String {
    match &report.failure {
        None => String::new(),
        Some(f) => format!(
            "iteration {} (seed {}): {}\nshrunk repro:\n{}",
            f.iter, f.seed, f.what, f.source
        ),
    }
}

#[test]
fn fixed_seed_fuzz_differential_is_clean() {
    let gen_opts = GenOptions { max_stmts: 3, ..Default::default() };
    let diff_opts = DiffOptions {
        workers: vec![2],
        max_states: 1 << 16,
        samples: 12,
        por: true,
        dpor: true,
        ..Default::default()
    };
    let report = fuzz(0xD1FF_2026, 32, &gen_opts, &diff_opts, |_| {});
    assert_eq!(report.iters, 32);
    assert!(report.ok(), "{}", fail_message(&report));
    assert!(
        report.passed >= 16,
        "too many skips ({} passed, {} skipped): the cap is mis-tuned for the generator",
        report.passed,
        report.skipped
    );
}

/// Worker-count coverage at the fuzz level: a second seed with a wider
/// worker list but fewer iterations.
#[test]
fn fixed_seed_fuzz_differential_covers_more_workers() {
    let gen_opts = GenOptions { max_stmts: 2, max_threads: 3, ..Default::default() };
    let diff_opts = DiffOptions {
        workers: vec![3, 8],
        max_states: 1 << 16,
        samples: 8,
        por: true,
        dpor: true,
        ..Default::default()
    };
    let report = fuzz(0xBEEF, 12, &gen_opts, &diff_opts, |_| {});
    assert!(report.ok(), "{}", fail_message(&report));
    assert!(report.passed > 0);
}

/// A deliberately-large program exercises the skip path: the verdict is
/// `Skipped`, never a spurious `Fail`.
#[test]
fn oversized_programs_are_skipped_not_failed() {
    let gen_opts = GenOptions { min_threads: 4, max_threads: 4, max_stmts: 4, ..Default::default() };
    // Find a seed whose program overflows a tiny cap.
    let tiny = DiffOptions { workers: vec![], samples: 0, max_states: 64, round_trip: false, ..Default::default() };
    let g = (0..50)
        .map(|s| generate(s, &gen_opts))
        .find(|g| matches!(diff_one(g, 0, &tiny), DiffVerdict::Skipped))
        .expect("some 4-thread program exceeds 64 states");
    match diff_one(&g, 0, &tiny) {
        DiffVerdict::Skipped => {}
        other => panic!("expected Skipped, got {other:?}"),
    }
}

/// The long-run sweep (≈ 500 programs, both worker counts, full checks).
/// `cargo test --release -- --ignored` or CI's fuzz smoke runs this scale
/// through the CLI instead.
#[test]
#[ignore = "long-running fuzz sweep; run with --ignored (ideally --release)"]
fn long_fuzz_sweep_is_clean() {
    let gen_opts = GenOptions::default();
    // A tighter cap than the CLI default: programs near a 2^18 cap take
    // seconds *per engine configuration*, and this sweep runs eight of
    // them per program — skip the giants, sweep the many.
    let diff_opts = DiffOptions { max_states: 1 << 15, por: true, ..Default::default() };
    let report = fuzz(1, 500, &gen_opts, &diff_opts, |_| {});
    assert!(report.ok(), "{}", fail_message(&report));
    assert!(report.passed > 250, "passed only {} of 500", report.passed);
}

/// A third fixed seed dedicated to the DPOR lane, with thread cloning on
/// so the symmetry composition inside the lane has real orbits to fold
/// and worker counts spanning the CI matrix.
#[test]
fn fixed_seed_fuzz_differential_holds_dpor_to_the_oracle() {
    let gen_opts = GenOptions { max_stmts: 3, clone_threads: true, ..Default::default() };
    let diff_opts = DiffOptions {
        workers: vec![2, 4],
        max_states: 1 << 16,
        samples: 0,
        round_trip: false,
        dpor: true,
        symmetry: true,
        ..Default::default()
    };
    let report = fuzz(0xD70_2026, 24, &gen_opts, &diff_opts, |_| {});
    assert!(report.ok(), "{}", fail_message(&report));
    assert!(report.passed > 0);
}

/// The long-run DPOR sweep (≈ 500 programs): every generated program's
/// persistent-set search is held to the A7 contract against the unreduced
/// oracle at every worker count, composed with symmetry. Run with
/// `cargo test --release -- --ignored`, or at CI scale via
/// `rc11 fuzz --dpor`.
#[test]
#[ignore = "long-running fuzz sweep; run with --ignored (ideally --release)"]
fn long_dpor_fuzz_sweep_is_clean() {
    let gen_opts = GenOptions { clone_threads: true, ..Default::default() };
    let diff_opts = DiffOptions {
        workers: vec![1, 2, 4, 8],
        max_states: 1 << 15,
        dpor: true,
        symmetry: true,
        ..Default::default()
    };
    let report = fuzz(7, 500, &gen_opts, &diff_opts, |_| {});
    assert!(report.ok(), "{}", fail_message(&report));
    assert!(report.passed > 250, "passed only {} of 500", report.passed);
}
