//! Experiment E4: the literal Figure-4 AST engine and the compiled CFG
//! machine agree on program outcomes.
//!
//! Both engines exhaustively explore the same programs; the sets of
//! terminal `(locals, canonical memory)` pairs must coincide (the engines
//! differ in ε-step bookkeeping and local fusion, neither of which is
//! observable).

use rc11::prelude::*;
use rc11_lang::ast_step::{ast_successors, AstConfig};
use rc11_lang::machine::{successors, ObjectSemantics};
use std::collections::HashSet;

type Outcome = (Vec<Vec<Val>>, Combined);

fn ast_terminals(prog: &Program, objs: &dyn ObjectSemantics) -> HashSet<Outcome> {
    let mut seen = HashSet::new();
    let mut frontier = vec![AstConfig::initial(prog)];
    seen.insert(frontier[0].canonical());
    let mut out = HashSet::new();
    while let Some(c) = frontier.pop() {
        let succs = ast_successors(prog, objs, &c);
        if succs.is_empty() {
            assert!(c.terminated(), "AST engine stuck non-terminally");
            out.insert((c.locals.clone(), c.mem.canonical()));
            continue;
        }
        for (_, s) in succs {
            if seen.insert(s.canonical()) {
                frontier.push(s);
            }
        }
    }
    out
}

fn cfg_terminals(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    fuse: bool,
) -> HashSet<Outcome> {
    let mut seen = HashSet::new();
    let mut frontier = vec![Config::initial(prog)];
    seen.insert(frontier[0].canonical());
    let mut out = HashSet::new();
    let opts = StepOptions { fuse_local: fuse };
    while let Some(c) = frontier.pop() {
        let succs = successors(prog, objs, &c, opts);
        if succs.is_empty() {
            out.insert((c.locals.clone(), c.mem.canonical()));
            continue;
        }
        for (_, s) in succs {
            if seen.insert(s.canonical()) {
                frontier.push(s);
            }
        }
    }
    out
}

fn agree(prog: &Program, objs: &dyn ObjectSemantics) {
    let compiled = compile(prog);
    let ast = ast_terminals(prog, objs);
    let cfg_fused = cfg_terminals(&compiled, objs, true);
    let cfg_plain = cfg_terminals(&compiled, objs, false);
    assert_eq!(ast, cfg_fused, "{}: AST vs fused CFG outcomes differ", prog.name);
    assert_eq!(ast, cfg_plain, "{}: AST vs unfused CFG outcomes differ", prog.name);
}

#[test]
fn litmus_programs_agree() {
    for l in rc11_litmus::all() {
        if l.prog.objects.is_empty() {
            agree(&l.prog, &NoObjects);
        } else {
            agree(&l.prog, &AbstractObjects);
        }
    }
}

#[test]
fn lock_clients_agree() {
    let (prog, _) = rc11_refine::harness::handoff_client();
    agree(&prog, &AbstractObjects);
}

#[test]
fn inlined_seqlock_agrees() {
    let (abs, l) = rc11_refine::harness::handoff_client();
    let conc = instantiate(&abs, l, &rc11_locks::seqlock());
    agree(&conc, &NoObjects);
}

#[test]
fn control_flow_constructs_agree() {
    // while / if / do-until / nested loops with CAS and FAI.
    let mut p = ProgramBuilder::new("cf");
    let x = p.client_var("x", 0);
    let mut t1 = ThreadBuilder::new();
    let i = t1.reg_init("i", Val::Int(0));
    let r = t1.reg("r");
    p.add_thread(
        t1,
        seq([
            while_do(
                lt(i, 3),
                seq([fai(r, x), assign(i, add(i, 1))]),
            ),
            if_else(eq(r, 2), wr(x, 100), wr(x, 200)),
        ]),
    );
    let mut t2 = ThreadBuilder::new();
    let ok = t2.reg("ok");
    p.add_thread(t2, seq([cas(ok, x, 1, 50)]));
    agree(&p.build(), &NoObjects);
}
