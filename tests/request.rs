//! Cache-key soundness for the shared request path.
//!
//! The verdict cache keys on the canonical fingerprint of the parsed and
//! canonicalised program, so the *name-free* identity of a submission
//! decides whether it hits:
//!
//! * **Renaming and reordering are free** — rewriting every register,
//!   loop-counter, variable and thread name in a generated `.litmus`
//!   source and reversing its declaration lines yields the same
//!   fingerprint and a cache hit with a field-identical response;
//! * **Semantic perturbation misses** — flipping a release annotation or
//!   changing an initial value yields a different fingerprint and a
//!   fresh exploration;
//! * **Faults are contained, not cached** — an injected panic in the
//!   *sequential* engine escapes to the request path's `catch_unwind`,
//!   comes back as a `worker-fault` report carrying the panic message,
//!   and is never admitted to the cache.
//!
//! The generated programs ride `rc11_check::gen`, the same generator the
//! differential fuzz harness trusts.

use proptest::prelude::*;
use rc11::check::gen::{generate, GenOptions};
use rc11::check::{
    ChaosState, CheckParams, CheckResponse, CheckService, Engine, ExploreOptions, FaultPlan,
    Note, Served, StopReason, VerdictCache,
};
use rc11::core::Val;
use rc11::lang::compile;
use rc11::lang::machine::NoObjects;
use std::collections::BTreeSet;

/// A generated program as replayable `.litmus` source (expected set =
/// the sequential oracle's outcomes); `None` if the oracle truncated.
fn generated_source(seed: u64) -> Option<String> {
    let g = generate(seed, &GenOptions { max_stmts: 3, ..Default::default() });
    let prog = compile(&g.to_program("m"));
    let opts = ExploreOptions {
        record_traces: false,
        max_states: 1 << 16,
        fingerprint: false,
        ..Default::default()
    };
    let report = Engine::Sequential.explore(&prog, &NoObjects, &opts);
    if report.truncated() {
        return None;
    }
    let obs = g.observe();
    let outcomes: BTreeSet<Vec<Val>> = report
        .terminated
        .iter()
        .map(|c| obs.iter().map(|&(t, r)| c.reg(t, r)).collect())
        .collect();
    Some(g.to_litmus_source("m", "", &outcomes))
}

/// Rewrite every identifier the generator emits — registers `rN` → `qN`,
/// loop counters `cN` → `dN`, variables `xN` → `yN`, threads `TN` → `WN`
/// — leaving string literals and everything else alone. The result is a
/// syntactically different but canonically identical program.
fn rename_identifiers(src: &str) -> String {
    let mut out = String::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut in_string = false;
    while i < chars.len() {
        let c = chars[i];
        if c == '"' {
            in_string = !in_string;
            out.push(c);
            i += 1;
            continue;
        }
        if !in_string && (c.is_ascii_alphabetic() || c == '_') {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            let renamed = match ident.chars().next() {
                Some(head @ ('r' | 'c' | 'x' | 'T'))
                    if ident.len() > 1 && ident[1..].chars().all(|d| d.is_ascii_digit()) =>
                {
                    let tail = &ident[1..];
                    let new_head = match head {
                        'r' => 'q',
                        'c' => 'd',
                        'x' => 'y',
                        _ => 'W',
                    };
                    format!("{new_head}{tail}")
                }
                _ => ident,
            };
            out.push_str(&renamed);
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Reverse each contiguous block of `var …` declaration lines.
fn reverse_var_decls(src: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    let mut block: Vec<&str> = Vec::new();
    for line in src.lines() {
        if line.starts_with("var ") {
            block.push(line);
        } else {
            out.extend(block.drain(..).rev());
            out.push(line);
        }
    }
    out.extend(block.drain(..).rev());
    out.join("\n") + "\n"
}

fn same_report(a: &CheckResponse, b: &CheckResponse) -> bool {
    a.pass == b.pass
        && a.observed == b.observed
        && a.expected == b.expected
        && a.states == b.states
        && a.transitions == b.transitions
        && a.deadlocks == b.deadlocks
        && a.stop == b.stop
        && a.notes == b.notes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Thread/register renaming plus declaration reordering never change
    /// the fingerprint: the rewritten submission is a cache hit whose
    /// response matches the cold run field-for-field.
    #[test]
    fn renamed_and_reordered_submissions_hit_the_cache(seed in any::<u64>()) {
        if let Some(src) = generated_source(seed) {
            let service = CheckService::with_cache(VerdictCache::new(8));
            let params = CheckParams::default();
            let cold = service
                .check_source(&src, &params)
                .expect("generated source parses");
            prop_assert_eq!(cold.served, Served::Explored);
            prop_assert_eq!(cold.stop, StopReason::Complete);

            let mutated = reverse_var_decls(&rename_identifiers(&src));
            prop_assert_ne!(&mutated, &src, "the mutation must actually rewrite something");
            let warm = service
                .check_source(&mutated, &params)
                .expect("mutated source parses");
            prop_assert_eq!(warm.fingerprint, cold.fingerprint,
                "renaming/reordering changed the canonical fingerprint");
            prop_assert_eq!(warm.served, Served::MemCache,
                "a canonically identical submission missed the cache");
            prop_assert!(same_report(&warm, &cold),
                "the cached response diverges from the cold run");
        }
    }

    /// Semantically perturbed mutants — a flipped release annotation, a
    /// changed initial value — get a different fingerprint and explore.
    #[test]
    fn semantically_perturbed_mutants_miss_the_cache(seed in any::<u64>()) {
        if let Some(src) = generated_source(seed) {
            let service = CheckService::with_cache(VerdictCache::new(8));
            let params = CheckParams::default();
            let cold = service
                .check_source(&src, &params)
                .expect("generated source parses");

            // Every generated program declares `var x0 = 0`.
            let init_mutant = src.replacen("var x0 = 0", "var x0 = 1", 1);
            prop_assert_ne!(&init_mutant, &src);
            let got = service
                .check_source(&init_mutant, &params)
                .expect("mutant parses");
            prop_assert_ne!(got.fingerprint, cold.fingerprint,
                "a changed initial value kept the fingerprint");
            prop_assert_eq!(got.served, Served::Explored);

            // Not every seed emits a release write; flip one when present.
            if src.contains("=rel ") {
                let ann_mutant = src.replacen("=rel ", "= ", 1);
                let got = service
                    .check_source(&ann_mutant, &params)
                    .expect("mutant parses");
                prop_assert_ne!(got.fingerprint, cold.fingerprint,
                    "a flipped release annotation kept the fingerprint");
                prop_assert_eq!(got.served, Served::Explored);
            }
        }
    }
}

const MP: &str = r#"
litmus "mp-ra"
var x = 0
var y = 0
thread T1 { x = 1; y =rel 1; }
thread T2 { r1 =acq y; r2 = x; }
observe T2.r1 T2.r2
expected { (0, 0) (0, 1) (1, 1) }
"#;

/// The satellite-fix regression: an injected panic in the *sequential*
/// engine (which has no per-worker containment) unwinds into the request
/// path, which reports it as a worker fault with the panic message — and
/// never caches it, so the next check of the same program explores and
/// completes.
#[test]
fn sequential_chaos_panic_is_contained_and_not_cached() {
    // Keep the injected panic's backtrace out of the test log; real
    // panics keep the default report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("chaos: injected"));
        if !injected {
            default_hook(info);
        }
    }));

    let service = CheckService::with_cache(VerdictCache::new(8));
    let faulted = CheckParams {
        chaos: Some(ChaosState::new(FaultPlan {
            worker_panic_at: Some(1),
            ..FaultPlan::none()
        })),
        ..CheckParams::default()
    };
    let fault = service.check_source(MP, &faulted).expect("parses");
    assert_eq!(fault.stop, StopReason::WorkerFault);
    assert!(!fault.pass);
    assert_eq!((fault.states, fault.transitions), (0, 0));
    let message = fault
        .notes
        .iter()
        .find_map(|n| match n {
            Note::WorkerFault { message } => Some(message.clone()),
            _ => None,
        })
        .expect("a WorkerFault note carries the panic message");
    assert!(
        message.contains("chaos: injected worker panic"),
        "note message was {message:?}"
    );

    // Chaos is not part of the cache key, so the faulted run would have
    // poisoned the next check had it been admitted.
    let clean = service.check_source(MP, &CheckParams::default()).expect("parses");
    assert_eq!(clean.served, Served::Explored, "the faulted report was cached");
    assert_eq!(clean.stop, StopReason::Complete);
    assert!(clean.pass);
    // And now the *complete* verdict is what serves.
    let warm = service.check_source(MP, &CheckParams::default()).expect("parses");
    assert_eq!(warm.served, Served::MemCache);
    assert!(warm.pass);
}

/// The parallel engine contains the same injected panic inside a worker
/// (degraded `worker-fault` report, non-zero coverage) — the request
/// path must pass that through rather than re-wrap it.
#[test]
fn parallel_chaos_fault_reports_pass_through() {
    let service = CheckService::new();
    let params = CheckParams {
        workers: 2,
        chaos: Some(ChaosState::new(FaultPlan {
            worker_panic_at: Some(1),
            ..FaultPlan::none()
        })),
        ..CheckParams::default()
    };
    let r = service.check_source(MP, &params).expect("parses");
    assert_eq!(r.stop, StopReason::WorkerFault);
    assert!(!r.pass);
    assert!(
        r.notes
            .iter()
            .any(|n| matches!(n, Note::WorkerFault { message } if message.contains("chaos"))),
        "notes were {:?}",
        r.notes
    );
}
