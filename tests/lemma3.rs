//! Experiment E6: the six proof rules of Lemma 3, checked semantically.
//!
//! Each rule is a Hoare triple about one abstract-lock transition. The
//! check quantifies the triple over **every reachable configuration** of
//! two harness programs (the Figure-7 client and a three-thread variant):
//! wherever the precondition holds and the transition is enabled, the
//! postcondition must hold in the successor. This is the model-checking
//! reading of "Lemma 3 has been verified in Isabelle/HOL".

use rc11::figures;
use rc11::prelude::*;
use rc11_assert::pred::EvalCtx;
use rc11_objects::lock;

/// Collect every reachable canonical configuration.
fn reachable(prog: &CfgProgram) -> Vec<Config> {
    let mut configs = Vec::new();
    let report = Explorer::new(prog, &AbstractObjects)
        .with_options(ExploreOptions { record_traces: false, ..Default::default() })
        .explore_with(|cfg, _| {
            configs.push(cfg.clone());
        });
    assert!(!report.truncated());
    configs
}

/// A three-thread lock client exercising deeper lock histories (versions up
/// to 6) and a client variable written under the lock.
fn three_thread_client() -> (rc11_lang::Program, ObjRef, VarRef) {
    let mut p = ProgramBuilder::new("lemma3-harness");
    let x = p.client_var("x", 0);
    let l = p.lock("l");
    for i in 0..3 {
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([acquire(l), wr(x, 5 + i), release(l)]));
    }
    (p.build(), l, x)
}

struct RuleHarness {
    prog: CfgProgram,
    configs: Vec<Config>,
    l: ObjRef,
    x: VarRef,
}

fn harnesses() -> Vec<RuleHarness> {
    let f7 = figures::fig7();
    let p1 = compile(&f7.prog);
    let c1 = reachable(&p1);
    let (p, l, x) = three_thread_client();
    let p2 = compile(&p);
    let c2 = reachable(&p2);
    vec![
        RuleHarness { prog: p1, configs: c1, l: f7.l, x: f7.d1 },
        RuleHarness { prog: p2, configs: c2, l, x },
    ]
}

const MAX_VERSION: u32 = 8;

fn holds(p: &Pred, prog: &CfgProgram, cfg: &Config) -> bool {
    p.eval(EvalCtx { prog, cfg })
}

fn with_mem(cfg: &Config, mem: Combined) -> Config {
    Config { pcs: cfg.pcs.clone(), locals: cfg.locals.clone(), mem }
}

/// All six rules via the reusable `rc11::lemma3` module (the benches time
/// this path) — every rule must fire non-vacuously on both harnesses.
#[test]
fn all_rules_via_module() {
    for h in rc11::lemma3::standard_harnesses(3) {
        let stats = rc11::lemma3::check_all_rules(&h);
        assert!(stats.r1 > 0, "{}: rule 1 vacuous", h.prog.source.name);
        assert!(stats.r2 > 0);
        assert!(stats.r3 > 0);
        assert!(stats.r4 > 0);
        assert!(stats.r5 > 0, "{}: rule 5 vacuous", h.prog.source.name);
        assert!(stats.r6 > 0);
    }
}

/// Rule (1): `{H l.release_u} l.Acquire(v)_t {v > u + 1}`.
#[test]
fn rule_1_hidden_release_forces_later_version() {
    for h in harnesses() {
        let mut instances = 0;
        for cfg in &h.configs {
            for u in 0..MAX_VERSION {
                if !holds(&hidden(h.l, OpPat::Release(u)), &h.prog, cfg) {
                    continue;
                }
                for t in 0..h.prog.n_threads() {
                    for (v, _) in lock::acquire_steps(&cfg.mem, Tid(t as u8), h.l.loc) {
                        assert!(v > u + 1, "rule 1: acquired v={v} with release_{u} hidden");
                        instances += 1;
                    }
                }
            }
        }
        assert!(instances > 0, "rule 1 never fired on {}", h.prog.source.name);
    }
}

/// Rule (2): `{H l.release_u} l.m(v)_t {H l.release_u}` — hiddenness is
/// stable under lock operations.
#[test]
fn rule_2_hidden_is_stable() {
    for h in harnesses() {
        let mut instances = 0;
        for cfg in &h.configs {
            for u in 0..MAX_VERSION {
                let pre = hidden(h.l, OpPat::Release(u));
                if !holds(&pre, &h.prog, cfg) {
                    continue;
                }
                for t in 0..h.prog.n_threads() {
                    let tid = Tid(t as u8);
                    for (_, mem) in lock::acquire_steps(&cfg.mem, tid, h.l.loc)
                        .into_iter()
                        .chain(lock::release_steps(&cfg.mem, tid, h.l.loc))
                    {
                        assert!(
                            holds(&pre, &h.prog, &with_mem(cfg, mem)),
                            "rule 2: H release_{u} broken by a lock op"
                        );
                        instances += 1;
                    }
                }
            }
        }
        assert!(instances > 0);
    }
}

/// Rule (3): `{[l.release_u]_t} l.Acquire(v)_t {[l.acquire_{u+1}]_t}`.
#[test]
fn rule_3_definite_release_yields_next_acquire() {
    for h in harnesses() {
        let mut instances = 0;
        for cfg in &h.configs {
            for u in 0..MAX_VERSION {
                for t in 0..h.prog.n_threads() {
                    if !holds(&dobs_op(t, h.l, OpPat::Release(u)), &h.prog, cfg) {
                        continue;
                    }
                    for (v, mem) in lock::acquire_steps(&cfg.mem, Tid(t as u8), h.l.loc) {
                        assert_eq!(v, u + 1, "rule 3: version must be u+1");
                        assert!(
                            holds(
                                &dobs_op(t, h.l, OpPat::Acquire(u + 1)),
                                &h.prog,
                                &with_mem(cfg, mem)
                            ),
                            "rule 3: acquirer must definitely observe its acquire"
                        );
                        instances += 1;
                    }
                }
            }
        }
        assert!(instances > 0);
    }
}

/// Rule (4): `{[x = u]_t} l.m(v)_t' {[x = u]_t}` for `t' ≠ t` — another
/// thread's lock operations never disturb definite observations.
#[test]
fn rule_4_definite_obs_stable_under_other_lock_ops() {
    for h in harnesses() {
        let mut instances = 0;
        for cfg in &h.configs {
            for val in [0i64, 5, 6, 7] {
                for t in 0..h.prog.n_threads() {
                    let pre = dobs(t, h.x, val);
                    if !holds(&pre, &h.prog, cfg) {
                        continue;
                    }
                    for t2 in 0..h.prog.n_threads() {
                        if t2 == t {
                            continue;
                        }
                        let tid2 = Tid(t2 as u8);
                        for (_, mem) in lock::acquire_steps(&cfg.mem, tid2, h.l.loc)
                            .into_iter()
                            .chain(lock::release_steps(&cfg.mem, tid2, h.l.loc))
                        {
                            assert!(
                                holds(&pre, &h.prog, &with_mem(cfg, mem)),
                                "rule 4: [x={val}]{t} broken by thread {t2}'s lock op"
                            );
                            instances += 1;
                        }
                    }
                }
            }
        }
        assert!(instances > 0);
    }
}

/// Rule (5): `{⟨l.release_u⟩[x = n]_t} l.Acquire(v)_t {v = u+1 ⇒ [x = n]_t}`.
#[test]
fn rule_5_conditional_becomes_definite_on_acquire() {
    for h in harnesses() {
        let mut instances = 0;
        for cfg in &h.configs {
            for u in 0..MAX_VERSION {
                for n in [0i64, 5, 6, 7] {
                    for t in 0..h.prog.n_threads() {
                        let pre = cond_obs_op(t, h.l, OpPat::Release(u), h.x, n);
                        // Skip vacuous instances (no observable release_u):
                        // the conditional holds trivially and says nothing.
                        if !holds(&pobs_op(t, h.l, OpPat::Release(u)), &h.prog, cfg)
                            || !holds(&pre, &h.prog, cfg)
                        {
                            continue;
                        }
                        for (v, mem) in lock::acquire_steps(&cfg.mem, Tid(t as u8), h.l.loc) {
                            if v == u + 1 {
                                assert!(
                                    holds(&dobs(t, h.x, n), &h.prog, &with_mem(cfg, mem)),
                                    "rule 5: acquire of release_{u} must pin x = {n}"
                                );
                                instances += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(instances > 0, "rule 5 never fired on {}", h.prog.source.name);
    }
}

/// Rule (6): `{¬⟨l.release_u⟩_t' ∧ [x = v]_t} l.Release(u)_t
/// {⟨l.release_u⟩[x = v]_t'}`.
#[test]
fn rule_6_release_publishes_definite_observation() {
    for h in harnesses() {
        let mut instances = 0;
        for cfg in &h.configs {
            for u in 1..MAX_VERSION {
                for v in [0i64, 5, 6, 7] {
                    for t in 0..h.prog.n_threads() {
                        if !holds(&dobs(t, h.x, v), &h.prog, cfg) {
                            continue;
                        }
                        for t2 in 0..h.prog.n_threads() {
                            if t2 == t
                                || holds(&pobs_op(t2, h.l, OpPat::Release(u)), &h.prog, cfg)
                            {
                                continue;
                            }
                            for (n, mem) in
                                lock::release_steps(&cfg.mem, Tid(t as u8), h.l.loc)
                            {
                                if n != u {
                                    continue;
                                }
                                assert!(
                                    holds(
                                        &cond_obs_op(t2, h.l, OpPat::Release(u), h.x, v),
                                        &h.prog,
                                        &with_mem(cfg, mem)
                                    ),
                                    "rule 6: release_{u} must publish [x = {v}] to thread {t2}"
                                );
                                instances += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(instances > 0);
    }
}
