//! The rc11d differential battery: the daemon is held bit-identical to
//! the CLI's engine path, and its cache to the explorer.
//!
//! * **Corpus-wide parity** — every corpus file submitted to a live
//!   in-process daemon must come back with exactly the report the
//!   `Engine` path behind `rc11 run` produces: observed outcome set,
//!   state/transition counts, stop reason, deadlock count and notes —
//!   at 1 and 4 workers.
//! * **Warm resubmission** — a second pass over the corpus is served
//!   entirely from the cache (100% hit rate, zero new exploration) with
//!   responses bit-identical to the cold pass; after a daemon restart on
//!   the same spill directory the verdicts come back from disk, still
//!   bit-identical, still with zero exploration.
//! * **Truncation discipline** — budget-truncated responses are never
//!   admitted to the cache.
//! * **Shutdown discipline** — concurrent clients with mixed budgets
//!   plus a mid-queue shutdown: every request resolves (a report, a
//!   `cancelled` stop, or an explicit error) and the daemon's threads
//!   all join. Never a hang.

use rc11::check::wire::Json;
use rc11::check::{choose_engine, ExploreOptions};
use rc11::core::Val;
use rc11::daemon::{start, Client, DaemonConfig};
use rc11::lang::parse::val_literal;
use rc11::litmus;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// The corpus as raw sources, in `load_dir` order.
fn corpus_sources() -> Vec<(String, String)> {
    litmus::load_dir(corpus_dir())
        .expect("corpus/ must exist")
        .iter()
        .map(|(path, loaded)| {
            let l = loaded.as_ref().unwrap_or_else(|e| panic!("{e}"));
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{e}"));
            (l.name.clone(), src)
        })
        .collect()
}

/// A `BTreeSet<Vec<Val>>` in the wire encoding (sorted tuples of corpus
/// literals), for bit-exact comparison against a response's arrays.
fn rendered(set: &BTreeSet<Vec<Val>>) -> Vec<Vec<String>> {
    set.iter().map(|t| t.iter().map(val_literal).collect()).collect()
}

fn tuples_of(response: &Json, key: &str) -> Vec<Vec<String>> {
    response
        .get(key)
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("response has no {key} array"))
        .iter()
        .map(|t| {
            t.as_arr()
                .expect("tuple is an array")
                .iter()
                .map(|v| v.as_str().expect("value is a string").to_string())
                .collect()
        })
        .collect()
}

fn int_of(response: &Json, key: &str) -> i64 {
    response.get(key).and_then(Json::as_i64).unwrap_or_else(|| panic!("no {key}"))
}

fn str_of<'j>(response: &'j Json, key: &str) -> &'j str {
    response.get(key).and_then(Json::as_str).unwrap_or_else(|| panic!("no {key}"))
}

fn is_ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

/// The response fields that must be bit-identical between a cold run and
/// any cache hit for the same submission, as one comparable string.
fn report_key(response: &Json) -> String {
    [
        "name",
        "fingerprint",
        "pass",
        "observed",
        "expected",
        "states",
        "transitions",
        "deadlocks",
        "stop",
        "notes",
    ]
    .iter()
    .map(|k| {
        format!("{k}={}", response.get(k).map(Json::to_string_line).unwrap_or_default())
    })
    .collect::<Vec<_>>()
    .join(" ")
}

#[test]
fn daemon_reports_are_bit_identical_to_the_engine_path() {
    let entries = litmus::load_dir(corpus_dir()).expect("corpus/ must exist");
    let handle = start(&DaemonConfig::default()).expect("daemon starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    for workers in [1usize, 4] {
        let engine = choose_engine(workers);
        for (path, loaded) in &entries {
            let l = loaded.as_ref().unwrap_or_else(|e| panic!("{e}"));
            // The engine path `rc11 run` uses, at this worker count.
            let opts = ExploreOptions { record_traces: false, ..Default::default() };
            let (res, stop, deadlocks) = litmus::run_with_opts(l, &engine, &opts);
            // The daemon path, cache bypassed so every request explores.
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{e}"));
            let response = client
                .check_with(
                    &src,
                    vec![
                        ("workers", Json::Int(workers as i64)),
                        ("no_cache", Json::Bool(true)),
                    ],
                )
                .expect("daemon answers");
            let what = format!("{} @{workers} worker(s)", l.name);
            assert!(is_ok(&response), "{what}: {}", response.to_string_line());
            assert_eq!(str_of(&response, "name"), l.name, "{what}");
            assert_eq!(str_of(&response, "served"), "explored", "{what}");
            assert_eq!(
                response.get("pass").and_then(Json::as_bool),
                Some(res.pass),
                "{what}: verdicts diverge"
            );
            assert_eq!(int_of(&response, "states") as usize, res.states, "{what}: states");
            assert_eq!(
                int_of(&response, "transitions") as usize,
                res.transitions,
                "{what}: transitions"
            );
            assert_eq!(int_of(&response, "deadlocks") as usize, deadlocks, "{what}: deadlocks");
            assert_eq!(str_of(&response, "stop"), stop.to_string(), "{what}: stop");
            assert_eq!(
                tuples_of(&response, "observed"),
                rendered(&res.observed),
                "{what}: observed sets diverge"
            );
            assert_eq!(
                tuples_of(&response, "expected"),
                rendered(&res.expected),
                "{what}: expected sets diverge"
            );
            let note_strings: Vec<String> =
                res.notes.iter().map(|n| n.to_string()).collect();
            let response_notes: Vec<String> = response
                .get("notes")
                .and_then(Json::as_arr)
                .expect("notes array")
                .iter()
                .map(|n| n.as_str().expect("note is a string").to_string())
                .collect();
            assert_eq!(response_notes, note_strings, "{what}: notes diverge");
        }
    }
    handle.stop();
}

#[test]
fn warm_resubmission_is_pure_cache_and_survives_restart() {
    let dir = std::env::temp_dir().join(format!("rc11d-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sources = corpus_sources();
    let config = DaemonConfig { cache_dir: Some(dir.clone()), ..DaemonConfig::default() };

    // Cold pass: every file explores, populating memory and disk.
    let handle = start(&config).expect("daemon starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let mut cold = Vec::new();
    for (name, src) in &sources {
        let r = client.check(src).expect("daemon answers");
        assert!(is_ok(&r), "{name}: {}", r.to_string_line());
        assert_eq!(str_of(&r, "served"), "explored", "{name}: cold pass must explore");
        assert_eq!(str_of(&r, "stop"), "complete", "{name}: corpus entries complete");
        cold.push(report_key(&r));
    }
    // Warm pass: 100% memory hits, zero new exploration, bit-identical.
    let before = handle.stats();
    for ((name, src), cold_key) in sources.iter().zip(&cold) {
        let r = client.check(src).expect("daemon answers");
        assert_eq!(str_of(&r, "served"), "mem-cache", "{name}: warm pass must hit");
        assert_eq!(&report_key(&r), cold_key, "{name}: cached response diverges");
    }
    let after = handle.stats();
    assert_eq!(
        (before.explored_runs, before.states_explored),
        (after.explored_runs, after.states_explored),
        "the warm pass explored"
    );
    assert_eq!(after.cache.mem_hits as usize, sources.len());
    handle.stop();

    // Restart on the same spill directory: verdicts come back from disk,
    // still bit-identical, still with zero exploration.
    let handle = start(&config).expect("daemon restarts");
    let mut client = Client::connect(handle.addr()).expect("client reconnects");
    for ((name, src), cold_key) in sources.iter().zip(&cold) {
        let r = client.check(src).expect("daemon answers");
        assert_eq!(str_of(&r, "served"), "disk-cache", "{name}: restart pass must hit disk");
        assert_eq!(&report_key(&r), cold_key, "{name}: disk verdict diverges");
    }
    let stats = handle.stats();
    assert_eq!(stats.states_explored, 0, "the restarted daemon explored");
    assert_eq!(stats.cache.disk_hits as usize, sources.len());
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_truncated_responses_are_never_cached() {
    let handle = start(&DaemonConfig::default()).expect("daemon starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let (_, src) = &corpus_sources()[0];
    // Starved: stops early, must not be admitted.
    let truncated = client
        .check_with(src, vec![("max_transitions", Json::Int(1))])
        .expect("daemon answers");
    assert!(is_ok(&truncated));
    assert_ne!(str_of(&truncated, "stop"), "complete");
    assert_eq!(str_of(&truncated, "served"), "explored");
    // Same key (budgets are not part of it) — still a miss.
    let full = client.check(src).expect("daemon answers");
    assert_eq!(str_of(&full, "served"), "explored", "a truncated verdict was cached");
    assert_eq!(str_of(&full, "stop"), "complete");
    // Now the complete verdict serves.
    let warm = client.check(src).expect("daemon answers");
    assert_eq!(str_of(&warm, "served"), "mem-cache");
    handle.stop();
}

#[test]
fn rejects_malformed_requests_without_dropping_the_connection() {
    let handle = start(&DaemonConfig::default()).expect("daemon starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let bad = client
        .request(&rc11::check::wire::obj(vec![("cmd", Json::Str("check".into()))]))
        .expect("daemon answers");
    assert!(!is_ok(&bad));
    assert!(str_of(&bad, "error").contains("source"));
    let parse_error = client.check("litmus \"broken").expect("daemon answers");
    assert!(!is_ok(&parse_error));
    assert!(str_of(&parse_error, "error").starts_with("parse:"));
    // The connection survives both failures.
    assert!(client.ping().expect("daemon still answers"));
    handle.stop();
}

#[test]
fn concurrent_clients_with_mixed_budgets_and_mid_queue_shutdown_never_hang() {
    // One worker so jobs genuinely queue; a shutdown fired while the
    // queue is non-empty must drain every job with an explicit answer.
    let config = DaemonConfig { pool: 1, queue_cap: 1024, ..DaemonConfig::default() };
    let handle = start(&config).expect("daemon starts");
    let addr = handle.addr();
    let sources: Vec<String> =
        corpus_sources().into_iter().map(|(_, src)| src).take(12).collect();

    let clients: Vec<_> = (0..4)
        .map(|i: usize| {
            let sources = sources.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut answered = 0usize;
                for (j, src) in sources.iter().enumerate() {
                    // Mixed budgets: unbudgeted, transition-starved, and
                    // tightly deadlined submissions interleave.
                    let extra = match (i + j) % 3 {
                        0 => Vec::new(),
                        1 => vec![("max_transitions", Json::Int(2))],
                        _ => vec![("deadline_ms", Json::Int(1))],
                    };
                    match client.check_with(src, extra) {
                        Ok(response) => {
                            // Every answered request is well-formed: a
                            // report (possibly truncated or cancelled) or
                            // an explicit error.
                            if is_ok(&response) {
                                let stop = str_of(&response, "stop");
                                assert!(
                                    [
                                        "complete",
                                        "state-cap",
                                        "transition-cap",
                                        "mem-budget",
                                        "deadline",
                                        "cancelled",
                                        "worker-fault"
                                    ]
                                    .contains(&stop),
                                    "unknown stop {stop:?}"
                                );
                            } else {
                                let err = str_of(&response, "error");
                                assert!(
                                    err.contains("shutting down") || err.contains("busy"),
                                    "unexpected error {err:?}"
                                );
                            }
                            answered += 1;
                        }
                        // After shutdown the daemon may close the
                        // connection instead; that is an explicit
                        // resolution too, not a hang.
                        Err(_) => break,
                    }
                }
                answered
            })
        })
        .collect();

    // Fire shutdown while the single worker still has a backlog.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let mut killer = Client::connect(addr).expect("killer connects");
    let ack = killer.shutdown().expect("shutdown acknowledged");
    assert!(is_ok(&ack));

    let mut answered_total = 0usize;
    for c in clients {
        answered_total += c.join().expect("client thread panicked");
    }
    assert!(answered_total > 0, "no request was ever answered");
    // The real assertion: every daemon thread joins. A lost job or a
    // stuck worker would hang right here.
    handle.join();
}
