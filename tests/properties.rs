//! Cross-crate property tests: randomly generated programs validate the
//! invariants the deductive arguments lean on.

use proptest::prelude::*;
use rc11::prelude::*;
use rc11_lang::ast_step::{ast_successors, AstConfig};
use rc11_lang::machine::successors;
use std::collections::HashSet;

/// A compact instruction descriptor for random program generation.
#[derive(Debug, Clone, Copy)]
enum RInstr {
    Wr { var: u8, val: u8, rel: bool },
    Rd { var: u8, acq: bool },
    Cas { var: u8, expect: u8, new: u8 },
    Fai { var: u8 },
}

fn rinstr() -> impl Strategy<Value = RInstr> {
    prop_oneof![
        (0u8..2, 1u8..4, any::<bool>()).prop_map(|(var, val, rel)| RInstr::Wr { var, val, rel }),
        (0u8..2, any::<bool>()).prop_map(|(var, acq)| RInstr::Rd { var, acq }),
        (0u8..2, 0u8..3, 1u8..4).prop_map(|(var, expect, new)| RInstr::Cas { var, expect, new }),
        (0u8..2).prop_map(|var| RInstr::Fai { var }),
    ]
}

fn build_program(threads: &[Vec<RInstr>]) -> Program {
    let mut p = ProgramBuilder::new("random");
    let v0 = p.client_var("x", 0);
    let v1 = p.client_var("y", 0);
    let vars = [v0, v1];
    for instrs in threads {
        let mut tb = ThreadBuilder::new();
        // One destination register per read-like instruction.
        let regs: Vec<Reg> = (0..instrs.len()).map(|i| tb.reg(&format!("r{i}"))).collect();
        let body = seq(instrs.iter().enumerate().map(|(i, ins)| match *ins {
            RInstr::Wr { var, val, rel } => {
                if rel {
                    wr_rel(vars[var as usize], val as i64)
                } else {
                    wr(vars[var as usize], val as i64)
                }
            }
            RInstr::Rd { var, acq } => {
                if acq {
                    rd_acq(regs[i], vars[var as usize])
                } else {
                    rd(regs[i], vars[var as usize])
                }
            }
            RInstr::Cas { var, expect, new } => {
                cas(regs[i], vars[var as usize], expect as i64, new as i64)
            }
            RInstr::Fai { var } => fai(regs[i], vars[var as usize]),
        }));
        p.add_thread(tb, body);
    }
    p.build()
}

type Outcome = (Vec<Vec<Val>>, Combined);

fn cfg_terminals(prog: &CfgProgram, fuse: bool) -> HashSet<Outcome> {
    let mut seen = HashSet::new();
    let mut frontier = vec![Config::initial(prog)];
    seen.insert(frontier[0].canonical());
    let mut out = HashSet::new();
    while let Some(c) = frontier.pop() {
        let succs = successors(prog, &NoObjects, &c, StepOptions { fuse_local: fuse });
        if succs.is_empty() {
            out.insert((c.locals.clone(), c.mem.canonical()));
            continue;
        }
        for (_, s) in succs {
            if seen.insert(s.canonical()) {
                frontier.push(s);
            }
        }
    }
    out
}

fn ast_terminals(prog: &Program) -> HashSet<Outcome> {
    let mut seen = HashSet::new();
    let mut frontier = vec![AstConfig::initial(prog)];
    seen.insert(frontier[0].canonical());
    let mut out = HashSet::new();
    while let Some(c) = frontier.pop() {
        let succs = ast_successors(prog, &NoObjects, &c);
        if succs.is_empty() {
            out.insert((c.locals.clone(), c.mem.canonical()));
            continue;
        }
        for (_, s) in succs {
            if seen.insert(s.canonical()) {
                frontier.push(s);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// AST engine ≡ CFG engine (fused and unfused) on random straight-line
    /// concurrent programs.
    #[test]
    fn engines_agree_on_random_programs(
        t1 in prop::collection::vec(rinstr(), 0..4),
        t2 in prop::collection::vec(rinstr(), 0..4),
    ) {
        let prog = build_program(&[t1, t2]);
        let compiled = compile(&prog);
        let a = ast_terminals(&prog);
        let f = cfg_terminals(&compiled, true);
        let u = cfg_terminals(&compiled, false);
        prop_assert_eq!(&a, &f, "AST vs fused CFG");
        prop_assert_eq!(&a, &u, "AST vs unfused CFG");
    }

    /// Thread views only move forward: along every edge, every thread's
    /// view of every location is at least as recent (never regresses past
    /// an op it had already observed as its frontier).
    #[test]
    fn views_are_monotone(
        t1 in prop::collection::vec(rinstr(), 0..5),
        t2 in prop::collection::vec(rinstr(), 0..5),
    ) {
        let prog = build_program(&[t1, t2]);
        let compiled = compile(&prog);
        let mut seen = HashSet::new();
        let mut frontier = vec![Config::initial(&compiled)];
        seen.insert(frontier[0].canonical());
        while let Some(c) = frontier.pop() {
            for (_, s) in successors(&compiled, &NoObjects, &c, StepOptions::default()) {
                // Old-state frontier op must still be ≤ the new frontier in
                // the NEW state's modification order (ids are stable within
                // a step; canonicalise only after the check).
                let old_st = c.mem.client();
                let new_st = s.mem.client();
                for t in 0..2 {
                    for l in 0..2 {
                        let tid = rc11::core::Tid(t as u8);
                        let loc = rc11::core::Loc(l as u16);
                        let old_front = old_st.tview(tid).get(loc);
                        let new_front = new_st.tview(tid).get(loc);
                        prop_assert!(
                            new_st.rank_of(old_front) <= new_st.rank_of(new_front),
                            "thread {t} view of loc {l} regressed"
                        );
                    }
                }
                if seen.insert(s.canonical()) {
                    frontier.push(s);
                }
            }
        }
    }

    /// Canonicalisation is idempotent and invariant-preserving on all
    /// reachable configurations of random programs.
    #[test]
    fn canonicalisation_is_stable_on_reachable_configs(
        t1 in prop::collection::vec(rinstr(), 0..4),
        t2 in prop::collection::vec(rinstr(), 0..4),
    ) {
        let prog = build_program(&[t1, t2]);
        let compiled = compile(&prog);
        let mut seen = HashSet::new();
        let mut frontier = vec![Config::initial(&compiled)];
        while let Some(c) = frontier.pop() {
            let canon = c.canonical();
            canon.mem.check_invariants();
            prop_assert_eq!(canon.canonical(), canon.clone());
            for (_, s) in successors(&compiled, &NoObjects, &c, StepOptions::default()) {
                if seen.insert(s.canonical()) {
                    frontier.push(s);
                }
            }
        }
    }

    /// Symmetry soundness (ablation A6) on adversarial inputs: programs
    /// with 2–3 *cloned* thread bodies (fully symmetric, the case the
    /// reduction bites hardest), optionally plus one distinct thread
    /// (partial symmetry — the orbit must not leak across groups).
    /// Exploring with `symmetry: true` must preserve the terminal-state
    /// multiset exactly (orbit expansion) while never growing the state
    /// count, under the sequential and the parallel engine, alone and
    /// composed with POR.
    #[test]
    fn symmetry_reduction_is_sound_on_cloned_threads(
        body in prop::collection::vec(rinstr(), 0..4),
        clones in 2usize..4,
        with_extra in any::<bool>(),
        extra in prop::collection::vec(rinstr(), 1..3),
    ) {
        let mut threads: Vec<Vec<RInstr>> = vec![body; clones];
        if with_extra {
            threads.push(extra);
        }
        let compiled = compile(&build_program(&threads));
        let base = ExploreOptions { record_traces: false, ..Default::default() };
        let oracle = Engine::Sequential.explore(&compiled, &NoObjects, &base);
        let multiset = |cfgs: &[Config]| {
            let mut m = std::collections::HashMap::<Config, usize>::new();
            for c in cfgs {
                *m.entry(c.clone()).or_insert(0) += 1;
            }
            m
        };
        let terminals = multiset(&oracle.terminated);
        for por in [false, true] {
            let opts = ExploreOptions { symmetry: true, por, ..base.clone() };
            for engine in [Engine::Sequential, Engine::Parallel { workers: 2 }] {
                let r = engine.explore(&compiled, &NoObjects, &opts);
                prop_assert!(
                    r.states <= oracle.states,
                    "{engine:?} por {por}: symmetry grew the state count ({} > {})",
                    r.states, oracle.states
                );
                prop_assert_eq!(
                    multiset(&r.terminated),
                    terminals.clone(),
                    "{:?} por {}: orbit expansion changed the terminal multiset",
                    engine, por
                );
                prop_assert_eq!(
                    r.deadlocked.len(),
                    oracle.deadlocked.len(),
                    "{:?} por {}: deadlocks",
                    engine, por
                );
            }
        }
    }

    /// Update atomicity: in every reachable configuration, each location has
    /// exactly one uncovered maximal op, and every covered op has an update
    /// (or lock-style op) immediately after it in modification order.
    #[test]
    fn covers_are_immediately_followed(
        t1 in prop::collection::vec(rinstr(), 0..5),
        t2 in prop::collection::vec(rinstr(), 0..5),
    ) {
        let prog = build_program(&[t1, t2]);
        let compiled = compile(&prog);
        let mut seen = HashSet::new();
        let mut frontier = vec![Config::initial(&compiled)];
        seen.insert(frontier[0].canonical());
        while let Some(c) = frontier.pop() {
            let st = c.mem.client();
            for l in 0..2u16 {
                let mo = st.mo(rc11::core::Loc(l));
                let max = *mo.last().unwrap();
                prop_assert!(!st.is_covered(max), "maximal op must be uncovered");
                for (i, &w) in mo.iter().enumerate() {
                    if st.is_covered(w) {
                        let next = mo[i + 1];
                        prop_assert!(
                            st.op(next).act.is_update(),
                            "covered op not followed by an update"
                        );
                    }
                }
            }
            for (_, s) in successors(&compiled, &NoObjects, &c, StepOptions::default()) {
                if seen.insert(s.canonical()) {
                    frontier.push(s);
                }
            }
        }
    }
}
