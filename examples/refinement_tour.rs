//! A tour of the two refinement checkers: forward simulation (Definition
//! 8) versus literal stutter-free trace inclusion (Definitions 5–7), on
//! growing clients — the ablation behind DESIGN.md's A2.
//!
//! Run with `cargo run --release --example refinement_tour`.

use rc11::prelude::*;
use rc11_refine::harness;
use rc11_refine::{
    check_forward_simulation, check_trace_inclusion, ClientShape, SimOptions, TraceOptions,
};
use std::io::Write;
use std::time::Instant;

fn main() {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "{:<14} {:<10} {:>9} {:>9} {:>11} {:>11}",
        "client", "impl", "sim(ms)", "incl(ms)", "conc-states", "traces"
    )
    .unwrap();

    let clients: Vec<(String, Program, ObjRef)> = vec![
        ("handoff".into(), harness::handoff_client().0, harness::handoff_client().1),
        ("fig7".into(), harness::fig7_client().0, harness::fig7_client().1),
        ("rounds(2)".into(), harness::rounds_client(2).0, harness::rounds_client(2).1),
    ];

    for (name, client, l) in &clients {
        let shape = ClientShape::of(client);
        let abs_cfg = compile(client);
        for imp in [rc11_locks::seqlock(), rc11_locks::ticket()] {
            let conc = instantiate(client, *l, &imp);
            let conc_cfg = compile(&conc);

            let t0 = Instant::now();
            let sim = check_forward_simulation(
                &abs_cfg,
                &AbstractObjects,
                &conc_cfg,
                &NoObjects,
                &shape,
                SimOptions::default(),
            );
            let sim_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(sim.holds);

            let t0 = Instant::now();
            let incl = check_trace_inclusion(
                &abs_cfg,
                &AbstractObjects,
                &conc_cfg,
                &NoObjects,
                &shape,
                TraceOptions::default(),
            );
            let incl_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(incl.holds);

            writeln!(
                out,
                "{:<14} {:<10} {:>9.2} {:>9.2} {:>11} {:>11}",
                name, imp.name, sim_ms, incl_ms, sim.concrete_states, incl.concrete_traces
            )
            .unwrap();
        }
    }
    writeln!(out, "\nsimulation scales with states; the baseline with traces —").unwrap();
    writeln!(out, "the gap is the point of Definition 8 (see bench thm81_baseline).").unwrap();
}
