//! Quickstart: build a weak-memory program, explore it exhaustively, and
//! check an assertion — the message-passing idiom from the paper's
//! Section 2 in ~40 lines.
//!
//! Run with `cargo run --example quickstart`.

use rc11::prelude::*;

fn main() {
    // A client with two shared variables, data `d` and flag `f`.
    let mut p = ProgramBuilder::new("quickstart");
    let d = p.client_var("d", 0);
    let f = p.client_var("f", 0);

    // Thread 1 publishes d = 5 with a releasing flag write.
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(d, 5), wr_rel(f, 1)]));

    // Thread 2 spins on the flag (acquiring), then reads the data.
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([do_until(rd_acq(r1, f), eq(r1, 1)), rd(r2, d)]));

    let prog = compile(&p.build());

    // Explore every RC11 RAR execution.
    let report = Explorer::new(&prog, &NoObjects).explore();
    println!("explored {} states, {} transitions", report.states, report.transitions);
    println!("terminal executions: {}", report.terminated.len());

    let mut outcomes: Vec<Val> = report.terminated.iter().map(|c| c.reg(1, r2)).collect();
    outcomes.sort();
    outcomes.dedup();
    println!("r2 outcomes: {outcomes:?}");
    assert_eq!(outcomes, vec![Val::Int(5)], "release/acquire forbids the stale read");

    // The same check, assertion-style: at termination, thread 2 definitely
    // observes d = 5.
    let post = dobs(1, d, 5);
    let outline = ProofOutline::new("quickstart", 2).post(post);
    let check = check_outline(&prog, &NoObjects, &outline, &ExploreOptions::default());
    assert!(check.valid());
    println!("postcondition [d = 5]₂ verified over all executions ✓");
}
