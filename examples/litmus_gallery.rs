//! The litmus gallery: every test explored exhaustively, verdicts against
//! the expected RC11 RAR outcome sets.
//!
//! Run with `cargo run --example litmus_gallery`.

use std::io::Write;

fn main() {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{:<10} {:>7} {:>9} {:>9}  about", "name", "states", "observed", "expected")
        .unwrap();
    let mut all_pass = true;
    for l in rc11_litmus::all() {
        let res = rc11_litmus::run(&l);
        all_pass &= res.pass;
        writeln!(
            out,
            "{:<10} {:>7} {:>9} {:>9}  {} — {}",
            l.name,
            res.states,
            res.observed.len(),
            res.expected.len(),
            if res.pass { "exact ✓" } else { "MISMATCH ✗" },
            l.about,
        )
        .unwrap();
        if !res.pass {
            writeln!(out, "    observed: {:?}", res.observed).unwrap();
            writeln!(out, "    expected: {:?}", res.expected).unwrap();
        }
    }
    assert!(all_pass, "litmus verdict mismatch");
    writeln!(out, "all verdicts exact ✓").unwrap();
}
