//! Figure 7, Lemma 4 and Propositions 9–10: the abstract lock, its proof
//! outline, and its two refinements.
//!
//! Run with `cargo run --example lock_clients`.

use rc11::figures;
use rc11::prelude::*;
use rc11_refine::harness;
use std::io::Write;

fn main() {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    // ---- Figure 7 / Lemma 4 -------------------------------------------
    let f = figures::fig7();
    let prog = compile(&f.prog);
    let outline = figures::fig7_outline(&f);
    let report = check_outline(&prog, &AbstractObjects, &outline, &ExploreOptions::default());
    writeln!(
        out,
        "Figure 7 outline ({} annotations): {} checks over {} states — {}",
        outline.n_assertions(),
        report.checks,
        report.states,
        if report.valid() { "VALID ✓ (Lemma 4)" } else { "INVALID ✗" }
    )
    .unwrap();
    assert!(report.valid());

    // The postcondition, directly.
    let exp = Explorer::new(&prog, &AbstractObjects).explore();
    let mut outcomes: Vec<(Val, Val)> =
        exp.terminated.iter().map(|c| (c.reg(1, f.r1), c.reg(1, f.r2))).collect();
    outcomes.sort();
    outcomes.dedup();
    writeln!(out, "  terminal (r1, r2): {outcomes:?}").unwrap();

    // ---- Propositions 9 and 10 -----------------------------------------
    let (client, l) = harness::fig7_client();
    for imp in [rc11_locks::seqlock(), rc11_locks::ticket(), rc11_locks::tas(), rc11_locks::ttas()]
    {
        let sim = rc11_refine::check_lock_refinement(&client, l, &imp);
        writeln!(
            out,
            "forward simulation: abstract lock ⊑ {:<24} {} ({} concrete × {} abstract states)",
            imp.name,
            if sim.holds { "HOLDS ✓" } else { "FAILS ✗" },
            sim.concrete_states,
            sim.abstract_states,
        )
        .unwrap();
        assert!(sim.holds);
    }

    // ---- Negative controls ---------------------------------------------
    for imp in [rc11_locks::broken_relaxed_seqlock(), rc11_locks::broken_noop_lock()] {
        let sim = rc11_refine::check_lock_refinement(&client, l, &imp);
        writeln!(
            out,
            "forward simulation: abstract lock ⊑ {:<24} {}",
            imp.name,
            if sim.holds { "HOLDS (BUG!)" } else { "REFUTED ✓" },
        )
        .unwrap();
        assert!(!sim.holds);
        if let Some(cex) = &sim.counterexample {
            writeln!(out, "  counterexample: {} client-visible trace points", cex.len())
                .unwrap();
            if let Some(last) = cex.last() {
                writeln!(out, "  final client registers: {:?}", last.locals).unwrap();
            }
        }
    }
}
