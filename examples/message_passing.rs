//! Figures 1–3: message passing through a library stack.
//!
//! * Figure 1 — relaxed `push`/`pop`: the stale read `r2 = 0` is reachable;
//! * Figure 2 — `push^R`/`pop^A`: `r2 = 5` in every execution;
//! * Figure 3 — the proof outline for Figure 2, checked at every reachable
//!   configuration.
//!
//! Run with `cargo run --example message_passing`.

use rc11::figures;
use rc11::prelude::*;
use std::io::Write;

fn main() {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    // ---- Figure 1: unsynchronised ------------------------------------
    let f1 = figures::fig1();
    let prog1 = compile(&f1.prog);
    let r1 = Explorer::new(&prog1, &AbstractObjects).explore();
    let stale =
        r1.terminated.iter().filter(|c| c.reg(1, f1.r2) == Val::Int(0)).count();
    writeln!(out, "Figure 1 (relaxed stack): {} states", r1.states).unwrap();
    writeln!(
        out,
        "  postcondition r2 = 0 ∨ r2 = 5; stale outcome in {stale}/{} terminals",
        r1.terminated.len()
    )
    .unwrap();
    assert!(stale > 0, "the weak behaviour must be reachable");

    // Outcome frequency under random scheduling (the paper's motivation:
    // the weak outcome is not a corner case).
    let samples = sample_terminals(&prog1, &AbstractObjects, 1000, 5_000, 7).expect("Figure 1 terminates");
    let stale_freq =
        samples.iter().filter(|c| c.reg(1, f1.r2) == Val::Int(0)).count() as f64 / 10.0;
    writeln!(out, "  sampled stale-read frequency: {stale_freq:.1}%").unwrap();

    // ---- Figure 2: synchronised --------------------------------------
    let f2 = figures::fig2();
    let prog2 = compile(&f2.prog);
    let r2 = Explorer::new(&prog2, &AbstractObjects).explore();
    writeln!(out, "Figure 2 (push^R / pop^A): {} states", r2.states).unwrap();
    assert!(r2.terminated.iter().all(|c| c.reg(1, f2.r2) == Val::Int(5)));
    writeln!(out, "  r2 = 5 in all {} terminals ✓", r2.terminated.len()).unwrap();

    // ---- Figure 3: the proof outline ----------------------------------
    let outline = figures::fig3_outline(&f2);
    let report = check_outline(&prog2, &AbstractObjects, &outline, &ExploreOptions::default());
    writeln!(
        out,
        "Figure 3 outline: {} assertion evaluations over {} states — {}",
        report.checks,
        report.states,
        if report.valid() { "VALID ✓" } else { "INVALID ✗" }
    )
    .unwrap();
    assert!(report.valid());

    // Negative control: the same outline on Figure 1's program fails, and
    // the checker says where.
    let bad = check_outline(&prog1, &AbstractObjects, &figures::fig3_outline(&f1), &ExploreOptions::default());
    writeln!(
        out,
        "Figure 3 outline on Figure 1's program: {} violations (expected — the",
        bad.violations.len()
    )
    .unwrap();
    writeln!(out, "  relaxed push cannot justify ⟨s.pop 1⟩[d = 5]₂)").unwrap();
    assert!(!bad.violations.is_empty());
}
