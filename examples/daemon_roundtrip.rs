//! rc11d in-process: start the checking daemon on an ephemeral port,
//! submit a litmus program over TCP, resubmit a *renamed* copy to show
//! the canonical-fingerprint cache serving it without exploration, then
//! read the counters and shut down cleanly.
//!
//! Run with `cargo run --example daemon_roundtrip`.

use rc11::daemon::{start, Client, DaemonConfig};

const MP: &str = r#"
litmus "mp-ra"
var x = 0
var y = 0
thread T1 { x = 1; y =rel 1; }
thread T2 { r1 =acq y; r2 = x; }
observe T2.r1 T2.r2
expected { (0, 0) (0, 1) (1, 1) }
"#;

fn main() -> std::io::Result<()> {
    // Ephemeral port, in-memory cache only; `cache_dir: Some(dir)` would
    // add the checksummed disk spill that survives restarts.
    let handle = start(&DaemonConfig::default())?;
    println!("daemon listening on {}", handle.addr());

    let mut client = Client::connect(handle.addr())?;

    // Cold: the daemon parses, canonicalises, fingerprints, misses the
    // cache, and explores the full RC11 RAR state space.
    let cold = client.check(MP)?;
    println!(
        "cold: served={} pass={} states={}",
        cold.get("served").and_then(|j| j.as_str()).unwrap_or("?"),
        cold.get("pass").and_then(|j| j.as_bool()).unwrap_or(false),
        cold.get("states").and_then(|j| j.as_i64()).unwrap_or(-1),
    );

    // Warm: a syntactically different but canonically identical program
    // — every register, variable and thread renamed — hits the cache,
    // because the key is the fingerprint of the *canonical* form.
    // (Replacements are written token-wise — `x ` / `x;` rather than a
    // bare `x` — so keywords like `expected` survive.)
    let renamed = MP
        .replace("r1", "a1")
        .replace("r2", "b1")
        .replace("x ", "data ")
        .replace("x;", "data;")
        .replace("y ", "flag ")
        .replace("y;", "flag;")
        .replace("T1", "Writer")
        .replace("T2", "Reader");
    let warm = client.check(&renamed)?;
    println!(
        "warm (renamed): served={} fingerprint={}",
        warm.get("served").and_then(|j| j.as_str()).unwrap_or("?"),
        warm.get("fingerprint").and_then(|j| j.as_str()).unwrap_or("?"),
    );
    assert_eq!(warm.get("served").and_then(|j| j.as_str()), Some("mem-cache"));
    assert_eq!(
        warm.get("fingerprint").and_then(|j| j.as_str()),
        cold.get("fingerprint").and_then(|j| j.as_str()),
    );

    let stats = client.stats()?;
    println!(
        "stats: requests={} hits={} misses={}",
        stats.get("requests").and_then(|j| j.as_i64()).unwrap_or(-1),
        stats.get("mem_hits").and_then(|j| j.as_i64()).unwrap_or(-1),
        stats.get("misses").and_then(|j| j.as_i64()).unwrap_or(-1),
    );

    client.shutdown()?;
    handle.join();
    println!("daemon stopped");
    Ok(())
}
