//! # rc11d — the checking daemon behind `rc11 serve`
//!
//! A long-running check server on std only: JSON lines over TCP, a
//! bounded job queue feeding a worker pool, and the shared
//! [`CheckService`] request path (parse → canonicalise → fingerprint →
//! cache-probe → explore) with its canonical-fingerprint verdict cache —
//! so syntactically different but canonically identical submissions
//! (renamed registers/threads, reordered declarations) are answered
//! without exploring, from memory or from the checksummed disk spill
//! that survives restart.
//!
//! ## Protocol
//!
//! One JSON object per line in each direction. Requests carry a `cmd`:
//!
//! * `{"cmd":"check","source":"litmus …", …}` — check a `.litmus`
//!   source. Optional fields: `workers` (default 1), `max_states`,
//!   `deadline_ms`, `max_transitions`, `max_mem_bytes`, `fingerprint`
//!   (default true), `por`, `symmetry`, `dpor` (default false),
//!   `no_cache` (default false: probe and populate the verdict cache),
//!   `telemetry` (default false: attach a per-job sink; the response's
//!   `telemetry` field carries its snapshot).
//! * `{"cmd":"stats"}` — service counters: uptime, request and cache
//!   hit/miss counts, states explored, states/s, the queue-depth gauge
//!   and its peak since startup, the echoed config, and — when started
//!   with `--metrics` — latency percentiles (probe/explore split),
//!   queue-wait, per-worker utilization and cache efficiency by
//!   fingerprint class (`rc11 top` renders these live).
//! * `{"cmd":"ping"}` — liveness probe.
//! * `{"cmd":"shutdown"}` — stop accepting, cancel in-flight work, and
//!   drain: queued jobs resolve with `"stop":"cancelled"`, never hang.
//!
//! Every response carries `"ok"`; failures (parse errors, malformed
//! requests, a full queue) are `{"ok":false,"error":"…"}` — the
//! connection survives them. Check responses mirror
//! [`CheckResponse`] field-for-field with stable encodings: values in
//! the corpus literal syntax (`0`, `true`, `empty`, `bot`), stop
//! reasons and notes via their `Display` strings, the fingerprint as 32
//! hex digits.
//!
//! ## Shutdown discipline
//!
//! `shutdown` (the request, [`DaemonHandle::shutdown`], or process
//! kill) never loses a cached verdict: the cache writes through to disk
//! at insert time, so there is nothing to flush. In-flight explorations
//! share a daemon-wide [`CancelToken`] and stop at their next work item
//! with an explicit non-`Complete` report; queued jobs are drained
//! through the same (already cancelled) token so every waiting client
//! gets an answer.

use rc11_check::telemetry::snapshot_json;
use rc11_check::wire::{obj, parse_json, Json};
use rc11_check::{
    CancelToken, CheckParams, CheckResponse, CheckService, Served, StatsSnapshot, VerdictCache,
};
use rc11_core::Val;
use rc11_lang::parse::val_literal;
use rc11_telemetry::Telemetry;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration. The default binds an ephemeral loopback port
/// with a small pool and a memory-only cache.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port (read it back
    /// from [`DaemonHandle::addr`]).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub pool: usize,
    /// Bounded queue depth; a `check` that arrives with the queue full
    /// is rejected with a `busy` error rather than accepted unboundedly.
    pub queue_cap: usize,
    /// In-memory verdict-cache capacity (entries).
    pub cache_cap: usize,
    /// Disk-spill directory for the verdict cache; `None` = memory only.
    pub cache_dir: Option<PathBuf>,
    /// Collect and report extended per-job metrics (`rc11 serve
    /// --metrics`): latency percentiles split by probe/explore,
    /// queue-wait, per-worker utilization, and cache efficiency by
    /// fingerprint class. Counters live in memory only — a restart
    /// resets them (asserted by the daemon smoke script).
    pub metrics: bool,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            pool: 2,
            queue_cap: 64,
            cache_cap: 1024,
            cache_dir: None,
            metrics: false,
        }
    }
}

/// A bounded latency sample ring: keeps the most recent
/// [`Samples::CAP`] values for percentile estimates plus a lifetime
/// count, so `stats` stays O(CAP) however long the daemon runs.
#[derive(Default)]
struct Samples {
    vals: Vec<f64>,
    next: usize,
    total: u64,
}

impl Samples {
    const CAP: usize = 4096;

    fn push(&mut self, v: f64) {
        if self.vals.len() < Samples::CAP {
            self.vals.push(v);
        } else {
            self.vals[self.next] = v;
            self.next = (self.next + 1) % Samples::CAP;
        }
        self.total += 1;
    }

    /// `{count, p50, p90, p99, max}` over the retained window.
    fn summary_json(&self) -> Json {
        let mut sorted = self.vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        obj(vec![
            ("count", Json::Int(self.total as i64)),
            ("p50_ms", Json::Float(pct(0.50))),
            ("p90_ms", Json::Float(pct(0.90))),
            ("p99_ms", Json::Float(pct(0.99))),
            ("max_ms", Json::Float(sorted.last().copied().unwrap_or(0.0))),
        ])
    }
}

/// Per-fingerprint probe/hit tallies, capped; fingerprints past the cap
/// pool into an overflow bucket so hot keys stay exact.
#[derive(Default)]
struct FpClasses {
    by_fp: HashMap<(u64, u64), (u64, u64)>,
    overflow_probes: u64,
    overflow_hits: u64,
}

impl FpClasses {
    const CAP: usize = 8192;

    fn record(&mut self, fp: (u64, u64), hit: bool) {
        let slot = if self.by_fp.len() < FpClasses::CAP || self.by_fp.contains_key(&fp) {
            self.by_fp.entry(fp).or_insert((0, 0))
        } else {
            self.overflow_probes += 1;
            self.overflow_hits += hit as u64;
            return;
        };
        slot.0 += 1;
        slot.1 += hit as u64;
    }

    /// Aggregate by how often each fingerprint was requested: a
    /// `singleton` was seen once (a hit is only possible via the disk
    /// spill of an earlier daemon), `warm` 2–4 times, `hot` ≥5 — the
    /// split shows where the verdict cache is earning its keep.
    fn classes_json(&self) -> Json {
        let mut agg = [(0u64, 0u64, 0u64); 3]; // (fingerprints, probes, hits)
        for &(probes, hits) in self.by_fp.values() {
            let class = match probes {
                0 | 1 => 0,
                2..=4 => 1,
                _ => 2,
            };
            agg[class].0 += 1;
            agg[class].1 += probes;
            agg[class].2 += hits;
        }
        let class_obj = |(fps, probes, hits): (u64, u64, u64)| {
            obj(vec![
                ("fingerprints", Json::Int(fps as i64)),
                ("probes", Json::Int(probes as i64)),
                ("hits", Json::Int(hits as i64)),
                (
                    "hit_rate",
                    Json::Float(if probes > 0 { hits as f64 / probes as f64 } else { 0.0 }),
                ),
            ])
        };
        obj(vec![
            ("singleton", class_obj(agg[0])),
            ("warm", class_obj(agg[1])),
            ("hot", class_obj(agg[2])),
            ("overflow_probes", Json::Int(self.overflow_probes as i64)),
            ("overflow_hits", Json::Int(self.overflow_hits as i64)),
        ])
    }
}

/// Extended metrics collected when [`DaemonConfig::metrics`] is on.
struct Metrics {
    /// Enqueue → dequeue wait, milliseconds.
    queue_wait: Mutex<Samples>,
    /// End-to-end latency of cache-served jobs, milliseconds.
    probe_latency: Mutex<Samples>,
    /// End-to-end latency of explored jobs, milliseconds.
    explore_latency: Mutex<Samples>,
    /// Busy nanoseconds per pool worker (index = worker).
    worker_busy_nanos: Vec<AtomicU64>,
    /// Jobs completed per pool worker.
    worker_jobs: Vec<AtomicU64>,
    /// Cache efficiency by fingerprint request class.
    fp_classes: Mutex<FpClasses>,
}

impl Metrics {
    fn new(pool: usize) -> Metrics {
        Metrics {
            queue_wait: Mutex::new(Samples::default()),
            probe_latency: Mutex::new(Samples::default()),
            explore_latency: Mutex::new(Samples::default()),
            worker_busy_nanos: (0..pool).map(|_| AtomicU64::new(0)).collect(),
            worker_jobs: (0..pool).map(|_| AtomicU64::new(0)).collect(),
            fp_classes: Mutex::new(FpClasses::default()),
        }
    }
}

/// One queued check job: the raw source, the decoded per-request
/// parameters, and the channel its connection is blocked on.
struct Job {
    source: String,
    params: CheckParams,
    reply: mpsc::Sender<Json>,
    enqueued: Instant,
}

struct Shared {
    service: CheckService,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    queue_cap: usize,
    /// Live queue depth, maintained on enqueue/dequeue so `stats` reads
    /// a coherent gauge instead of racing the queue lock for a
    /// point-in-time sample.
    queue_depth: AtomicUsize,
    /// Deepest the queue has been since startup.
    queue_peak: AtomicUsize,
    shutdown: AtomicBool,
    /// Cloned into every job's `CheckParams::cancel`; cancelled once at
    /// shutdown so in-flight and still-queued jobs all resolve with an
    /// explicit non-`Complete` stop.
    kill: CancelToken,
    started: Instant,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Extended metrics, present iff [`DaemonConfig::metrics`].
    metrics: Option<Metrics>,
    /// The configuration this daemon started with, echoed by `stats`.
    config: DaemonConfig,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.kill.cancel();
        self.available.notify_all();
    }
}

/// A running daemon: its bound address plus the handles needed to stop
/// it and reclaim every thread.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The address the listener actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current service counters (same numbers the `stats` request
    /// reports).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.service.stats()
    }

    /// Signal shutdown: stop accepting, cancel in-flight explorations,
    /// drain the queue through the cancelled token. Idempotent; does not
    /// block — follow with [`DaemonHandle::join`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the accept loop, the worker pool and every connection
    /// thread to exit. Call after [`DaemonHandle::shutdown`] (or after a
    /// client sent the `shutdown` request).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let conns: Vec<_> = {
            let mut guard = self.shared.conns.lock().expect("conns lock");
            guard.drain(..).collect()
        };
        for h in conns {
            let _ = h.join();
        }
    }

    /// [`DaemonHandle::shutdown`] then [`DaemonHandle::join`].
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }
}

/// Start a daemon. Returns once the listener is bound; the accept loop,
/// worker pool and all connection handling run on background threads.
pub fn start(config: &DaemonConfig) -> io::Result<DaemonHandle> {
    let cache = match &config.cache_dir {
        Some(dir) => VerdictCache::with_disk(config.cache_cap.max(1), dir)?,
        None => VerdictCache::new(config.cache_cap.max(1)),
    };
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let pool = config.pool.max(1);
    let shared = Arc::new(Shared {
        service: CheckService::with_cache(cache),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        queue_cap: config.queue_cap.max(1),
        queue_depth: AtomicUsize::new(0),
        queue_peak: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        kill: CancelToken::new(),
        started: Instant::now(),
        conns: Mutex::new(Vec::new()),
        metrics: config.metrics.then(|| Metrics::new(pool)),
        config: config.clone(),
    });

    let workers = (0..pool)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rc11d-worker-{i}"))
                .spawn(move || worker_loop(&shared, i))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("rc11d-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn accept loop")
    };

    Ok(DaemonHandle { addr, shared, accept: Some(accept), workers })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("rc11d-conn".to_string())
                    .spawn(move || serve_conn(&shared2, stream))
                    .expect("spawn connection thread");
                shared.conns.lock().expect("conns lock").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, worker: usize) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = guard;
            }
        };
        let Some(job) = job else { break };
        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let waited = job.enqueued.elapsed();
        // After shutdown the shared token is already cancelled, so a
        // drained job's exploration trips `Cancelled` at its first gate:
        // the waiting client gets an explicit answer, never a hang.
        let busy = Instant::now();
        let outcome = shared.service.check_source(&job.source, &job.params);
        let busy_elapsed = busy.elapsed();
        if let Some(m) = &shared.metrics {
            m.queue_wait.lock().expect("metrics lock").push(waited.as_secs_f64() * 1e3);
            m.worker_busy_nanos[worker].fetch_add(busy_elapsed.as_nanos() as u64, Ordering::Relaxed);
            m.worker_jobs[worker].fetch_add(1, Ordering::Relaxed);
            if let Ok(r) = &outcome {
                let lat_ms = busy_elapsed.as_secs_f64() * 1e3;
                let bucket = match r.served {
                    Served::Explored => &m.explore_latency,
                    _ => &m.probe_latency,
                };
                bucket.lock().expect("metrics lock").push(lat_ms);
                m.fp_classes
                    .lock()
                    .expect("metrics lock")
                    .record((r.fingerprint.hi, r.fingerprint.lo), r.served.is_hit());
            }
        }
        let response = match outcome {
            Ok(r) => check_json(&r),
            Err(e) => error_json(&format!("parse: {e}")),
        };
        let _ = job.reply.send(response);
    }
}

fn serve_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets the thread notice daemon shutdown while
    // parked on an idle connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(150)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.trim().is_empty() {
                    let (response, stop) = handle_line(shared, &line);
                    if writer
                        .write_all((response.to_string_line() + "\n").as_bytes())
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        break;
                    }
                    if stop {
                        shared.begin_shutdown();
                    }
                }
                line.clear();
            }
            // Timeout with a partial line buffered: keep accumulating.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Dispatch one request line. Returns the response and whether the
/// daemon should begin shutdown after it is written.
fn handle_line(shared: &Arc<Shared>, line: &str) -> (Json, bool) {
    let request = match parse_json(line) {
        Ok(j) => j,
        Err(e) => return (error_json(&format!("bad request: {e}")), false),
    };
    match request.get("cmd").and_then(Json::as_str) {
        Some("ping") => (obj(vec![("ok", Json::Bool(true)), ("pong", Json::Bool(true))]), false),
        Some("stats") => (stats_json(shared), false),
        Some("shutdown") => {
            (obj(vec![("ok", Json::Bool(true)), ("stopping", Json::Bool(true))]), true)
        }
        Some("check") => (handle_check(shared, &request), false),
        Some(other) => (error_json(&format!("unknown cmd {other:?}")), false),
        None => (error_json("missing cmd"), false),
    }
}

fn handle_check(shared: &Arc<Shared>, request: &Json) -> Json {
    let Some(source) = request.get("source").and_then(Json::as_str) else {
        return error_json("check: missing source");
    };
    let params = match decode_params(request, &shared.kill) {
        Ok(p) => p,
        Err(e) => return error_json(&e),
    };
    let (reply, result) = mpsc::channel();
    {
        let mut queue = shared.queue.lock().expect("queue lock");
        if shared.shutdown.load(Ordering::SeqCst) {
            return error_json("shutting down");
        }
        if queue.len() >= shared.queue_cap {
            return error_json(&format!("busy: queue full ({} jobs)", queue.len()));
        }
        queue.push_back(Job {
            source: source.to_string(),
            params,
            reply,
            enqueued: Instant::now(),
        });
        let depth = shared.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        shared.queue_peak.fetch_max(depth, Ordering::Relaxed);
        shared.available.notify_one();
    }
    match result.recv() {
        Ok(response) => response,
        Err(_) => error_json("worker dropped the job"),
    }
}

fn decode_params(request: &Json, kill: &CancelToken) -> Result<CheckParams, String> {
    let mut params = CheckParams { cancel: kill.clone(), ..CheckParams::default() };
    let usize_field = |key: &str| -> Result<Option<usize>, String> {
        match request.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(j) => match j.as_i64() {
                Some(n) if n >= 0 => Ok(Some(n as usize)),
                _ => Err(format!("check: {key} must be a non-negative integer")),
            },
        }
    };
    let bool_field = |key: &str| -> Result<Option<bool>, String> {
        match request.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Bool(b)) => Ok(Some(*b)),
            Some(_) => Err(format!("check: {key} must be a boolean")),
        }
    };
    if let Some(w) = usize_field("workers")? {
        params.workers = w.max(1);
    }
    if let Some(n) = usize_field("max_states")? {
        params.max_states = n;
    }
    if let Some(ms) = usize_field("deadline_ms")? {
        params.budget.deadline = Some(Duration::from_millis(ms as u64));
    }
    if let Some(n) = usize_field("max_transitions")? {
        params.budget.max_transitions = Some(n);
    }
    if let Some(n) = usize_field("max_mem_bytes")? {
        params.budget.max_mem_bytes = Some(n);
    }
    if let Some(b) = bool_field("fingerprint")? {
        params.fingerprint = b;
    }
    if let Some(b) = bool_field("por")? {
        params.por = b;
    }
    if let Some(b) = bool_field("symmetry")? {
        params.symmetry = b;
    }
    if let Some(b) = bool_field("dpor")? {
        params.dpor = b;
    }
    if let Some(b) = bool_field("no_cache")? {
        params.use_cache = !b;
    }
    // A client that wants per-run counters sets `"telemetry": true`;
    // the job gets a private sink and the response carries its snapshot
    // (cache hits answer with a `served_from_cache` snapshot instead).
    if let Some(true) = bool_field("telemetry")? {
        params.telemetry = Some(Arc::new(Telemetry::new()));
    }
    Ok(params)
}

fn tuples_json(set: &BTreeSet<Vec<Val>>) -> Json {
    Json::Arr(
        set.iter()
            .map(|tuple| {
                Json::Arr(tuple.iter().map(|v| Json::Str(val_literal(v))).collect())
            })
            .collect(),
    )
}

/// The stable wire encoding of a check response.
pub fn check_json(r: &CheckResponse) -> Json {
    obj(vec![
        ("ok", Json::Bool(true)),
        ("name", Json::Str(r.name.clone())),
        (
            "fingerprint",
            Json::Str(format!("{:016x}{:016x}", r.fingerprint.hi, r.fingerprint.lo)),
        ),
        ("served", Json::Str(r.served.as_str().to_string())),
        ("cache_hit", Json::Bool(r.served.is_hit())),
        ("pass", Json::Bool(r.pass)),
        ("observed", tuples_json(&r.observed)),
        ("expected", tuples_json(&r.expected)),
        ("states", Json::Int(r.states as i64)),
        ("transitions", Json::Int(r.transitions as i64)),
        ("deadlocks", Json::Int(r.deadlocks as i64)),
        ("stop", Json::Str(r.stop.to_string())),
        ("notes", Json::Arr(r.notes.iter().map(|n| Json::Str(n.to_string())).collect())),
        ("wall_ms", Json::Float(r.wall.as_secs_f64() * 1e3)),
        (
            "telemetry",
            match &r.telemetry {
                Some(snap) => snapshot_json(snap),
                None => Json::Null,
            },
        ),
    ])
}

fn error_json(message: &str) -> Json {
    obj(vec![("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))])
}

fn stats_json(shared: &Arc<Shared>) -> Json {
    let s = shared.service.stats();
    let uptime = shared.started.elapsed().as_secs_f64();
    // The gauge, not a racy `queue.lock().len()` sample: maintained on
    // enqueue/dequeue, with the peak since startup alongside.
    let queue_depth = shared.queue_depth.load(Ordering::Relaxed);
    let queue_peak = shared.queue_peak.load(Ordering::Relaxed);
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("uptime_secs", Json::Float(uptime)),
        ("requests", Json::Int(s.requests as i64)),
        ("mem_hits", Json::Int(s.cache.mem_hits as i64)),
        ("disk_hits", Json::Int(s.cache.disk_hits as i64)),
        ("misses", Json::Int(s.cache.misses as i64)),
        ("hit_rate", Json::Float(s.cache.hit_rate())),
        ("inserts", Json::Int(s.cache.inserts as i64)),
        ("evictions", Json::Int(s.cache.evictions as i64)),
        ("explored_runs", Json::Int(s.explored_runs as i64)),
        ("states_explored", Json::Int(s.states_explored as i64)),
        ("transitions_explored", Json::Int(s.transitions_explored as i64)),
        ("states_per_sec", Json::Float(s.states_per_sec())),
        ("queue_depth", Json::Int(queue_depth as i64)),
        ("queue_peak", Json::Int(queue_peak as i64)),
        (
            "config",
            obj(vec![
                ("pool", Json::Int(shared.config.pool.max(1) as i64)),
                ("queue_cap", Json::Int(shared.queue_cap as i64)),
                ("cache_cap", Json::Int(shared.config.cache_cap as i64)),
                (
                    "cache_dir",
                    match &shared.config.cache_dir {
                        Some(d) => Json::Str(d.display().to_string()),
                        None => Json::Null,
                    },
                ),
                ("metrics", Json::Bool(shared.config.metrics)),
            ]),
        ),
    ];
    if let Some(m) = &shared.metrics {
        let workers = Json::Arr(
            m.worker_busy_nanos
                .iter()
                .zip(&m.worker_jobs)
                .map(|(busy, jobs)| {
                    let busy_secs = busy.load(Ordering::Relaxed) as f64 / 1e9;
                    obj(vec![
                        ("jobs", Json::Int(jobs.load(Ordering::Relaxed) as i64)),
                        ("busy_secs", Json::Float(busy_secs)),
                        (
                            "utilization",
                            Json::Float(if uptime > 0.0 { busy_secs / uptime } else { 0.0 }),
                        ),
                    ])
                })
                .collect(),
        );
        fields.push((
            "metrics",
            obj(vec![
                (
                    "queue_wait",
                    m.queue_wait.lock().expect("metrics lock").summary_json(),
                ),
                (
                    "probe_latency",
                    m.probe_latency.lock().expect("metrics lock").summary_json(),
                ),
                (
                    "explore_latency",
                    m.explore_latency.lock().expect("metrics lock").summary_json(),
                ),
                ("workers", workers),
                (
                    "fp_classes",
                    m.fp_classes.lock().expect("metrics lock").classes_json(),
                ),
            ]),
        ));
    }
    obj(fields)
}

/// A blocking line-protocol client for the daemon — used by
/// `rc11 submit`, the test battery and the CI smoke script.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Send one request object, read one response object.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        self.writer.write_all((request.to_string_line() + "\n").as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed connection"));
        }
        parse_json(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// `check` a `.litmus` source with extra request fields (`workers`,
    /// `deadline_ms`, `no_cache`, …) merged in.
    pub fn check_with(&mut self, source: &str, extra: Vec<(&str, Json)>) -> io::Result<Json> {
        let mut fields = vec![("cmd", Json::Str("check".to_string())),
            ("source", Json::Str(source.to_string()))];
        fields.extend(extra);
        let request = obj(fields);
        self.request(&request)
    }

    /// `check` a `.litmus` source with daemon defaults.
    pub fn check(&mut self, source: &str) -> io::Result<Json> {
        self.check_with(source, Vec::new())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<bool> {
        let r = self.request(&obj(vec![("cmd", Json::Str("ping".to_string()))]))?;
        Ok(r.get("pong").and_then(Json::as_bool) == Some(true))
    }

    /// Fetch the service counters.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request(&obj(vec![("cmd", Json::Str("stats".to_string()))]))
    }

    /// Ask the daemon to stop (it acknowledges, then drains and exits).
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&obj(vec![("cmd", Json::Str("shutdown".to_string()))]))
    }
}
