//! The `rc11` command-line driver.
//!
//! * `rc11 run <path>…` — batch-run `.litmus` files (or directories of
//!   them) under any combination of engines, with a summary table and a
//!   nonzero exit on any parse error or verdict mismatch;
//! * `rc11 fuzz` — drive the generative differential harness from a seed.
//!
//! ```text
//! rc11 run corpus/ --workers 1,2,4,8
//! rc11 run corpus/mp_rlx.litmus --engine parallel --workers 4 --show-outcomes
//! rc11 fuzz --seed 7 --iters 500 --workers 2,4
//! ```

use rc11::check::gen::GenOptions;
use rc11::check::fuzz::{fuzz, DiffOptions};
use rc11::check::{choose_engine, Engine};
use rc11::litmus::{self, Litmus};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("rc11: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
rc11 — litmus tests and differential fuzzing for the RC11 RAR semantics

USAGE:
  rc11 run <path>... [OPTIONS]     batch-run .litmus files / directories
  rc11 fuzz [OPTIONS]              generative differential fuzzing

RUN OPTIONS:
  --engine <seq|parallel>    engine family (default: seq; `parallel` implies
                             the --workers list, default 4)
  --workers <N[,N...]>       worker counts to run each test at; 1 = the
                             sequential reference engine (default: 1)
  --no-fingerprint           use materialised-canonical dedup instead of
                             zero-rebuild canonical fingerprints
  --por                      explore with sleep-set partial-order reduction
                             (ablation A5). Every test additionally runs
                             once unreduced: state counts and outcome sets
                             must match exactly, and the summary gains a
                             REDUCTION column (unreduced / reduced
                             transitions)
  --max-states <N>           per-test state cap (default: 5000000)
  --show-outcomes            print each test's observed outcome set
  -q, --quiet                only print failures and the final summary

FUZZ OPTIONS:
  --seed <S>                 base seed (default: 1)
  --iters <N>                programs to generate (default: 200)
  --workers <N[,N...]>       parallel worker counts to cross-check
                             (default: 2,4)
  --threads <MIN,MAX>        thread-count range (default: 2,4)
  --stmts <N>                max top-level statements per thread (default: 4)
  --max-states <N>           oracle state cap; larger programs are skipped
                             (default: 262144)
  --samples <N>              random walks per program for sampler-soundness
                             (default: 24)
  --por                      add the POR-on/off report-parity lane: both
                             engines re-explore each program with sleep-set
                             reduction and must preserve states, terminals
                             and outcome sets while generating no more
                             transitions

Exit status: 0 on full agreement, 1 on any mismatch/parse error, 2 on usage
errors.
";

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("rc11: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Parse `--key value` style options out of `args`, returning positional
/// arguments. Boolean flags are looked up directly by the callers.
struct Opts {
    args: Vec<String>,
}

impl Opts {
    fn value_of(&mut self, key: &str) -> Result<Option<String>, String> {
        if let Some(i) = self.args.iter().position(|a| a == key) {
            if i + 1 >= self.args.len() {
                return Err(format!("{key} needs a value"));
            }
            let v = self.args.remove(i + 1);
            self.args.remove(i);
            return Ok(Some(v));
        }
        Ok(None)
    }

    fn flag(&mut self, keys: &[&str]) -> bool {
        let before = self.args.len();
        self.args.retain(|a| !keys.contains(&a.as_str()));
        self.args.len() != before
    }

    fn parsed<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, String> {
        match self.value_of(key)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{key}: invalid value `{v}`")),
        }
    }

    fn usize_list(&mut self, key: &str, default: &[usize]) -> Result<Vec<usize>, String> {
        match self.value_of(key)? {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| s.trim().parse().map_err(|_| format!("{key}: invalid value `{s}`")))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// rc11 run
// ---------------------------------------------------------------------

fn cmd_run(raw: &[String]) -> ExitCode {
    let mut opts = Opts { args: raw.to_vec() };
    let engine_kind = match opts.value_of("--engine") {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let default_workers: &[usize] = match engine_kind.as_deref() {
        None | Some("seq") | Some("sequential") => &[1],
        Some("parallel") | Some("par") => &[4],
        Some(other) => return fail_usage(&format!("--engine: unknown engine `{other}`")),
    };
    let workers = match opts.usize_list("--workers", default_workers) {
        Ok(w) if !w.is_empty() => w,
        Ok(_) => return fail_usage("--workers: empty list"),
        Err(e) => return fail_usage(&e),
    };
    let max_states = match opts.parsed("--max-states", 5_000_000usize) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let fingerprint = !opts.flag(&["--no-fingerprint"]);
    let por = opts.flag(&["--por"]);
    let show_outcomes = opts.flag(&["--show-outcomes"]);
    let quiet = opts.flag(&["--quiet", "-q"]);
    if let Some(bad) = opts.args.iter().find(|a| a.starts_with('-')) {
        return fail_usage(&format!("unknown option `{bad}`"));
    }
    if opts.args.is_empty() {
        return fail_usage("run: no .litmus files or directories given");
    }

    // Collect and load the work list (directories via the library's
    // `load_dir`, so the CLI and the test suite share one enumeration).
    let mut files: Vec<(PathBuf, Result<Litmus, litmus::LoadError>)> = Vec::new();
    let mut broken = 0usize;
    for arg in &opts.args {
        let p = PathBuf::from(arg);
        if p.is_dir() {
            match litmus::load_dir(&p) {
                Ok(entries) if entries.is_empty() => {
                    eprintln!("rc11: no .litmus files in {}", p.display());
                    broken += 1;
                }
                Ok(entries) => files.extend(entries),
                Err(e) => {
                    eprintln!("rc11: {}: {e}", p.display());
                    broken += 1;
                }
            }
        } else {
            files.push((p.clone(), litmus::load_file(&p)));
        }
    }

    let engines: Vec<(usize, Engine)> =
        workers.iter().map(|&w| (w, choose_engine(w))).collect();
    let explore_opts = rc11::check::ExploreOptions {
        record_traces: false,
        max_states,
        fingerprint,
        por,
        ..Default::default()
    };

    let mut passed = 0usize;
    let mut failed = 0usize;
    let mut full_transitions_total = 0usize;
    let mut por_transitions_total = 0usize;
    if !quiet {
        if por {
            println!(
                "{:<16} {:>8} {:>10} {:>10} {:>10}  RESULT",
                "NAME", "STATES", "OBSERVED", "EXPECTED", "REDUCTION"
            );
        } else {
            println!(
                "{:<16} {:>8} {:>10} {:>10}  RESULT",
                "NAME", "STATES", "OBSERVED", "EXPECTED"
            );
        }
    }
    // `LoadError`'s Display already includes the path, so only the loaded
    // result is consumed here.
    for (_path, loaded) in &files {
        let litmus = match loaded {
            Ok(l) => l,
            Err(e) => {
                eprintln!("rc11: {e}");
                broken += 1;
                continue;
            }
        };
        let mut ok = true;
        let mut states = 0usize;
        let mut transitions = 0usize;
        let mut first_divergence: Option<String> = None;
        let mut observed: Option<std::collections::BTreeSet<Vec<rc11::core::Val>>> = None;
        let mut prev_workers = 0usize;
        for (w, engine) in &engines {
            let (res, truncated, deadlocks) = litmus::run_with_opts(litmus, engine, explore_opts);
            states = res.states;
            transitions = res.transitions;
            if !res.pass && first_divergence.is_none() {
                first_divergence = Some(if truncated {
                    format!("@{w} worker(s): truncated at --max-states {max_states}")
                } else if deadlocks > 0 {
                    format!("@{w} worker(s): {deadlocks} deadlocked configuration(s)")
                } else {
                    let missing: Vec<_> = res.expected.difference(&res.observed).collect();
                    let extra: Vec<_> = res.observed.difference(&res.expected).collect();
                    format!("@{w} worker(s): missing {missing:?}, unexpected {extra:?}")
                });
            }
            ok &= res.pass;
            // All requested engine configurations must also agree with
            // each other, not just with the expectation.
            if let Some(pobs) = &observed {
                if pobs != &res.observed {
                    ok = false;
                    first_divergence.get_or_insert(format!(
                        "engines disagree: {prev_workers} vs {w} worker(s) observe different sets"
                    ));
                }
            }
            observed = Some(res.observed);
            prev_workers = *w;
        }
        // With --por, decide the same test once unreduced (sequentially):
        // the reduction factor is unreduced/reduced transitions, and the
        // unreduced run doubles as a soundness differential — states and
        // outcome set must match the reduced runs exactly.
        let mut reduction: Option<f64> = None;
        if por {
            let full_opts = rc11::check::ExploreOptions { por: false, ..explore_opts };
            let (full, _, _) =
                litmus::run_with_opts(litmus, &Engine::Sequential, full_opts);
            full_transitions_total += full.transitions;
            por_transitions_total += transitions;
            if full.states != states {
                ok = false;
                first_divergence.get_or_insert(format!(
                    "POR changed the state count: {} reduced vs {} full",
                    states, full.states
                ));
            }
            if Some(&full.observed) != observed.as_ref() {
                ok = false;
                first_divergence
                    .get_or_insert("POR changed the observed outcome set".to_string());
            }
            if transitions > full.transitions {
                ok = false;
                first_divergence.get_or_insert(format!(
                    "POR generated more transitions: {} reduced vs {} full",
                    transitions, full.transitions
                ));
            }
            reduction = Some(full.transitions as f64 / transitions.max(1) as f64);
        }
        // One separator space plus a 10-wide cell, matching the header's
        // ` {:>10}` REDUCTION column.
        let red = reduction.map(|r| format!(" {:>10}", format!("{r:.2}x"))).unwrap_or_default();
        let observed = observed.unwrap_or_default();
        if ok {
            passed += 1;
            if !quiet {
                println!(
                    "{:<16} {:>8} {:>10} {:>10}{red}  pass",
                    litmus.name,
                    states,
                    observed.len(),
                    litmus.expected.len()
                );
            }
        } else {
            failed += 1;
            println!(
                "{:<16} {:>8} {:>10} {:>10}{red}  FAIL  {}",
                litmus.name,
                states,
                observed.len(),
                litmus.expected.len(),
                first_divergence.unwrap_or_default()
            );
        }
        if show_outcomes {
            for tuple in &observed {
                let vals: Vec<String> = tuple.iter().map(rc11::lang::parse::val_literal).collect();
                println!("    ({})", vals.join(", "));
            }
        }
    }

    print!(
        "\n{} file(s): {passed} passed, {failed} failed, {broken} unreadable; \
         engines: {:?} worker(s), fingerprint {}",
        files.len(),
        workers,
        if fingerprint { "on" } else { "off" }
    );
    if por && por_transitions_total > 0 {
        println!(
            "; POR reduction {:.2}x ({} transitions vs {} unreduced)",
            full_transitions_total as f64 / por_transitions_total as f64,
            por_transitions_total,
            full_transitions_total
        );
    } else {
        println!();
    }
    if failed == 0 && broken == 0 && passed > 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// rc11 fuzz
// ---------------------------------------------------------------------

fn cmd_fuzz(raw: &[String]) -> ExitCode {
    let mut opts = Opts { args: raw.to_vec() };
    let seed = match opts.parsed("--seed", 1u64) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let iters = match opts.parsed("--iters", 200usize) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let workers = match opts.usize_list("--workers", &[2, 4]) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let threads = match opts.usize_list("--threads", &[2, 4]) {
        Ok(v) if v.len() == 2 && v[0] >= 1 && v[0] <= v[1] => v,
        Ok(_) => return fail_usage("--threads: expected MIN,MAX with 1 <= MIN <= MAX"),
        Err(e) => return fail_usage(&e),
    };
    let stmts = match opts.parsed("--stmts", 4usize) {
        Ok(v) if v >= 1 => v,
        Ok(_) => return fail_usage("--stmts: must be at least 1"),
        Err(e) => return fail_usage(&e),
    };
    let max_states = match opts.parsed("--max-states", 1usize << 18) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let samples = match opts.parsed("--samples", 24usize) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let por = opts.flag(&["--por"]);
    if let Some(bad) = opts.args.first() {
        return fail_usage(&format!("fuzz takes no positional arguments (got `{bad}`)"));
    }

    let gen_opts = GenOptions {
        min_threads: threads[0],
        max_threads: threads[1],
        max_stmts: stmts,
        ..Default::default()
    };
    let diff_opts = DiffOptions { workers, max_states, samples, por, ..Default::default() };

    println!(
        "fuzzing {iters} programs from seed {seed} \
         ({}–{} threads, ≤{stmts} statements/thread, workers {:?}{})",
        gen_opts.min_threads,
        gen_opts.max_threads,
        diff_opts.workers,
        if por { ", POR parity lane on" } else { "" }
    );
    let step = (iters / 10).max(1);
    let report = fuzz(seed, iters, &gen_opts, &diff_opts, |r| {
        if r.iters % step == 0 && r.failure.is_none() {
            println!(
                "  {}/{iters}: {} passed, {} skipped, {} oracle states total",
                r.iters, r.passed, r.skipped, r.total_states
            );
        }
    });

    match &report.failure {
        None => {
            println!(
                "clean: {} checked, {} skipped (state cap), {} oracle states total",
                report.passed, report.skipped, report.total_states
            );
            ExitCode::SUCCESS
        }
        Some(f) => {
            println!(
                "FAILURE at iteration {} (seed {}): {}\n\nshrunk repro ({} statements):\n\n{}",
                f.iter,
                f.seed,
                f.what,
                f.shrunk.len(),
                f.source
            );
            ExitCode::FAILURE
        }
    }
}
