//! The `rc11` command-line driver.
//!
//! * `rc11 run <path>…` — batch-run `.litmus` files (or directories of
//!   them) under any combination of engines, with a summary table and a
//!   nonzero exit on any parse error or verdict mismatch;
//! * `rc11 lint <path>…` — static diagnostics over `.litmus` files:
//!   every file's findings are reported before the exit code is decided,
//!   so a batch never hides errors behind the first one;
//! * `rc11 fuzz` — drive the generative differential harness from a seed;
//! * `rc11 serve` — run rc11d, the cache-fronted checking daemon
//!   (JSON lines over TCP into the same request path `run` uses);
//! * `rc11 submit` — send `.litmus` files to a running daemon.
//!
//! ```text
//! rc11 run corpus/ --workers 1,2,4,8
//! rc11 run corpus/mp_rlx.litmus --engine parallel --workers 4 --show-outcomes
//! rc11 lint corpus/ --deny-warnings
//! rc11 fuzz --seed 7 --iters 500 --workers 2,4
//! rc11 serve --cache /tmp/rc11-cache &   # prints `rc11d: listening on ADDR`
//! rc11 submit corpus/ --addr 127.0.0.1:PORT --stats
//! ```

use rc11::analyze::{lint as analyze_lint, render_diagnostic, Severity};
use rc11::check::gen::GenOptions;
use rc11::check::fuzz::{fuzz, DiffOptions};
use rc11::check::wire::Json;
use rc11::check::{CheckParams, CheckService, Engine, VerdictCache};
use rc11::daemon::{self, DaemonConfig};
use rc11::lang::parse::parse_litmus;
use rc11::litmus::{self, Litmus};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("trace-report") => cmd_trace_report(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("rc11: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
rc11 — litmus tests and differential fuzzing for the RC11 RAR semantics

USAGE:
  rc11 run <path>... [OPTIONS]     batch-run .litmus files / directories
  rc11 lint <path>... [OPTIONS]    static diagnostics for .litmus files
  rc11 fuzz [OPTIONS]              generative differential fuzzing
  rc11 serve [OPTIONS]             run rc11d, the checking daemon
  rc11 submit <path>... [OPTIONS]  send .litmus files to a running daemon
  rc11 top <addr> [OPTIONS]        render a daemon's live metrics
  rc11 trace-report <file.jsonl>   validate + aggregate a --trace file

RUN OPTIONS:
  --engine <seq|parallel>    engine family (default: seq; `parallel` implies
                             the --workers list, default 4)
  --workers <N[,N...]>       worker counts to run each test at; 1 = the
                             sequential reference engine (default: 1)
  --no-fingerprint           use materialised-canonical dedup instead of
                             zero-rebuild canonical fingerprints
  --por                      explore with sleep-set partial-order reduction
                             (ablation A5). Every test additionally runs
                             once unreduced: state counts and outcome sets
                             must match exactly, and the summary gains a
                             REDUCTION column (unreduced / reduced
                             transitions). Programs beyond 64 threads fall
                             back to unreduced search (a note is printed;
                             results stay exact)
  --symmetry                 explore with thread-symmetry reduction
                             (ablation A6). Every test additionally runs
                             once without it: outcome sets must match
                             exactly while the state count never grows,
                             and the summary gains a SYM column
                             (unsymmetric / symmetric states)
  --dpor                     explore with persistent-set dynamic
                             partial-order reduction (ablation A7;
                             implies sleep sets). Every test additionally
                             runs once with sleep sets only: outcome sets
                             must match exactly while neither states nor
                             transitions grow, and the summary gains a
                             DPOR column (sleep-set / persistent-set
                             transitions). Programs beyond 128 locations
                             degrade to sleep sets, beyond 64 threads to
                             unreduced search (results stay exact)
  --max-states <N>           per-test state cap (default: 5000000)
  --deadline <SECS>          wall-clock budget per engine run; a run that
                             hits it stops with a sound lower bound and
                             the file is reported as stopped early
                             (`deadline`), the batch continues
  --max-transitions <N>      transition budget per engine run (same
                             stopped-early contract)
  --mem-budget <BYTES>       approximate interned-state memory budget per
                             engine run (same stopped-early contract)
  --checkpoint <DIR>         periodically checkpoint the exploration into
                             DIR (forces the sequential engine); an
                             interrupted run resumes from DIR and finishes
                             with a report identical to an uninterrupted
                             one; a `Complete` run removes the checkpoint
  --cache <DIR>              reuse complete verdicts across invocations from
                             a canonical-fingerprint cache spilled to DIR
                             (off by default: without it every engine run
                             explores). Only `complete` runs are admitted;
                             renamed-but-identical files hit without
                             exploring
  --show-outcomes            print each test's observed outcome set
  --progress[=SECS]          print a live heartbeat to stderr every SECS
                             seconds (default 5): files done, cumulative
                             states and states/s, frontier depth, prune /
                             dedup counters, ETA. Purely observational —
                             reports are bit-identical with it on or off
  --trace <FILE.jsonl>       stream timestamped events (run-start,
                             heartbeats, one `file` row per engine run
                             with its telemetry snapshot, notes, stop) as
                             JSON lines to FILE; `rc11 trace-report FILE`
                             validates and aggregates it
  -q, --quiet                only print failures and the final summary

  Each file's run is contained: a panic inside an engine is caught,
  reported as a FAIL row, and the batch continues. The summary NOTES
  column surfaces engine degradations (por-cap, dpor-cap, sym-cap),
  contained worker faults (fault), and checkpoint errors (ckpt); details
  print under each affected row.

LINT OPTIONS:
  --deny-warnings            exit nonzero on warnings, not just errors.
                             All findings across all files are reported
                             before the exit code is decided

FUZZ OPTIONS:
  --seed <S>                 base seed (default: 1)
  --iters <N>                programs to generate (default: 200)
  --workers <N[,N...]>       parallel worker counts to cross-check
                             (default: 2,4)
  --threads <MIN,MAX>        thread-count range (default: 2,4)
  --stmts <N>                max top-level statements per thread (default: 4)
  --max-states <N>           oracle state cap; larger programs are skipped
                             (default: 262144)
  --samples <N>              random walks per program for sampler-soundness
                             (default: 24)
  --por                      add the POR-on/off report-parity lane: both
                             engines re-explore each program with sleep-set
                             reduction and must preserve states, terminals
                             and outcome sets while generating no more
                             transitions
  --symmetry                 add the symmetry report-parity lane (and bias
                             the generator towards cloned threads): every
                             program re-explores with thread-symmetry
                             reduction — alone and combined with POR,
                             sequential and parallel — and must preserve
                             terminals and outcome sets while never
                             growing the state count
  --dpor                     add the persistent-set DPOR report-parity
                             lane: every program re-explores with
                             ExploreOptions::dpor on — both engines, both
                             dedup modes, composed with symmetry — and
                             must preserve terminal/deadlock counts and
                             outcome sets while never growing states or
                             transitions
  --chaos                    add the chaos differential lane: every
                             program re-runs under seeded fault schedules
                             (worker panic / stall / checkpoint-write
                             failure) and must report either bit-identical
                             results to the unfaulted oracle or an
                             explicitly non-complete stop reason — never a
                             silently wrong answer

SERVE OPTIONS:
  --addr <HOST:PORT>         bind address (default: 127.0.0.1:0; the bound
                             address is printed as `rc11d: listening on ADDR`)
  --pool <N>                 worker threads draining the job queue
                             (default: 2)
  --queue <N>                bounded job-queue depth; checks arriving with
                             the queue full are rejected with a busy error
                             (default: 64)
  --cache <DIR>              spill cached verdicts to DIR (checksummed,
                             survives restart; default: memory only)
  --cache-cap <N>            in-memory verdict-cache entries (default: 1024)
  --metrics                  collect extended per-job metrics and report
                             them in `stats`: latency percentiles split
                             probe/explore, queue-wait, per-worker
                             utilization, cache efficiency by fingerprint
                             class. In-memory only: a restart resets them

  The daemon answers one JSON object per line over TCP (protocol in
  DESIGN.md §8): check / stats / ping / shutdown. Every check goes
  through the same request path as `rc11 run` — parse, canonicalise,
  fingerprint, cache-probe, explore — so syntactically different but
  canonically identical submissions are served from the cache. Shutdown
  cancels in-flight work and drains the queue with explicit `cancelled`
  responses; disk-spilled verdicts survive a kill at any point.

SUBMIT OPTIONS:
  --addr <HOST:PORT>         daemon address (required)
  --workers <N>              engine for cache misses (default: 1)
  --no-cache                 bypass the daemon's verdict cache
  --expect-all-hits          exit nonzero unless every response was served
                             from the cache (the CI warm-pass assertion)
  --stats                    print the daemon's stats after submitting
  --ping                     just ping the daemon and exit
  --shutdown                 ask the daemon to stop after submitting

TOP OPTIONS:
  --interval <SECS>          refresh period (default: 2)
  --once                     render one snapshot and exit (scriptable)

  `rc11 top ADDR` polls a daemon's `stats` and renders the counters —
  and, when the daemon runs with --metrics, the latency percentiles,
  queue-wait, per-worker utilization and fingerprint-class cache
  efficiency — as a live text dashboard.

TRACE-REPORT:
  `rc11 trace-report FILE.jsonl` strictly validates a `rc11 run --trace`
  file (every line parses, required keys present, timestamps monotone)
  and prints per-phase and per-reduction attribution. Exit 1 on any
  schema violation.

Exit status: 0 on full agreement, 1 on any mismatch/parse error, 2 on usage
errors.
";

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("rc11: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Parse `--key value` style options out of `args`, returning positional
/// arguments. Boolean flags are looked up directly by the callers.
struct Opts {
    args: Vec<String>,
}

impl Opts {
    fn value_of(&mut self, key: &str) -> Result<Option<String>, String> {
        if let Some(i) = self.args.iter().position(|a| a == key) {
            if i + 1 >= self.args.len() {
                return Err(format!("{key} needs a value"));
            }
            let v = self.args.remove(i + 1);
            self.args.remove(i);
            return Ok(Some(v));
        }
        Ok(None)
    }

    fn flag(&mut self, keys: &[&str]) -> bool {
        let before = self.args.len();
        self.args.retain(|a| !keys.contains(&a.as_str()));
        self.args.len() != before
    }

    fn parsed<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, String> {
        match self.value_of(key)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{key}: invalid value `{v}`")),
        }
    }

    fn usize_list(&mut self, key: &str, default: &[usize]) -> Result<Vec<usize>, String> {
        match self.value_of(key)? {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| s.trim().parse().map_err(|_| format!("{key}: invalid value `{s}`")))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// rc11 run
// ---------------------------------------------------------------------

fn cmd_run(raw: &[String]) -> ExitCode {
    let mut opts = Opts { args: raw.to_vec() };
    let engine_kind = match opts.value_of("--engine") {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let default_workers: &[usize] = match engine_kind.as_deref() {
        None | Some("seq") | Some("sequential") => &[1],
        Some("parallel") | Some("par") => &[4],
        Some(other) => return fail_usage(&format!("--engine: unknown engine `{other}`")),
    };
    let workers = match opts.usize_list("--workers", default_workers) {
        Ok(w) if !w.is_empty() => w,
        Ok(_) => return fail_usage("--workers: empty list"),
        Err(e) => return fail_usage(&e),
    };
    let max_states = match opts.parsed("--max-states", 5_000_000usize) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let deadline = match opts.value_of("--deadline") {
        Ok(None) => None,
        Ok(Some(v)) => match v.parse::<f64>() {
            Ok(secs) if secs > 0.0 => Some(std::time::Duration::from_secs_f64(secs)),
            _ => return fail_usage(&format!("--deadline: invalid value `{v}`")),
        },
        Err(e) => return fail_usage(&e),
    };
    let max_transitions = match opts.value_of("--max-transitions") {
        Ok(None) => None,
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => return fail_usage(&format!("--max-transitions: invalid value `{v}`")),
        },
        Err(e) => return fail_usage(&e),
    };
    let mem_budget = match opts.value_of("--mem-budget") {
        Ok(None) => None,
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => return fail_usage(&format!("--mem-budget: invalid value `{v}`")),
        },
        Err(e) => return fail_usage(&e),
    };
    let checkpoint = match opts.value_of("--checkpoint") {
        Ok(v) => v.map(rc11::check::CheckpointOpts::new),
        Err(e) => return fail_usage(&e),
    };
    let cache_dir = match opts.value_of("--cache") {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let fingerprint = !opts.flag(&["--no-fingerprint"]);
    let por = opts.flag(&["--por"]);
    let symmetry = opts.flag(&["--symmetry"]);
    let dpor = opts.flag(&["--dpor"]);
    let show_outcomes = opts.flag(&["--show-outcomes"]);
    let quiet = opts.flag(&["--quiet", "-q"]);
    // `--progress[=SECS]` is the CLI's one `=`-style option: bare
    // `--progress` must not swallow the following positional path.
    let mut progress: Option<f64> = None;
    if let Some(i) =
        opts.args.iter().position(|a| a == "--progress" || a.starts_with("--progress="))
    {
        let a = opts.args.remove(i);
        progress = Some(match a.strip_prefix("--progress=") {
            None => 5.0,
            Some(v) => match v.parse::<f64>() {
                Ok(secs) if secs > 0.0 => secs,
                _ => return fail_usage(&format!("--progress: invalid interval `{v}`")),
            },
        });
    }
    let trace_path = match opts.value_of("--trace") {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    if let Some(bad) = opts.args.iter().find(|a| a.starts_with('-')) {
        return fail_usage(&format!("unknown option `{bad}`"));
    }
    if opts.args.is_empty() {
        return fail_usage("run: no .litmus files or directories given");
    }
    // Checkpointing is a sequential-explorer feature (the replay log
    // records the deterministic expansion order); force workers=[1].
    let workers = if checkpoint.is_some() {
        if workers != [1] {
            eprintln!("rc11: --checkpoint forces the sequential engine; ignoring --workers");
        }
        vec![1]
    } else {
        workers
    };

    // Collect and load the work list (directories via the library's
    // `load_dir`, so the CLI and the test suite share one enumeration).
    let mut files: Vec<(PathBuf, Result<Litmus, litmus::LoadError>)> = Vec::new();
    let mut broken = 0usize;
    for arg in &opts.args {
        let p = PathBuf::from(arg);
        if p.is_dir() {
            match litmus::load_dir(&p) {
                Ok(entries) if entries.is_empty() => {
                    eprintln!("rc11: no .litmus files in {}", p.display());
                    broken += 1;
                }
                Ok(entries) => files.extend(entries),
                Err(e) => {
                    eprintln!("rc11: {}: {e}", p.display());
                    broken += 1;
                }
            }
        } else {
            files.push((p.clone(), litmus::load_file(&p)));
        }
    }

    // Every engine run goes through the shared request path (the same
    // one the daemon serves): parse → canonicalise → fingerprint →
    // cache-probe → explore. Without --cache the service has no cache
    // and every run explores, exactly as before.
    let service = match &cache_dir {
        Some(dir) => match VerdictCache::with_disk(4096, dir) {
            Ok(c) => CheckService::with_cache(c),
            Err(e) => {
                eprintln!("rc11: --cache {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => CheckService::new(),
    };
    // One cumulative sink backs the whole batch when --progress or
    // --trace is on: the heartbeat thread reads it live while every
    // engine run attaches only its own delta to its response.
    let telemetry: Option<std::sync::Arc<rc11::telemetry::Telemetry>> =
        (progress.is_some() || trace_path.is_some()).then(rc11::telemetry::Telemetry::shared);
    let budget = rc11::check::Budget { deadline, max_transitions, max_mem_bytes: mem_budget };
    let base_params = CheckParams {
        max_states,
        fingerprint,
        por,
        symmetry,
        dpor,
        budget,
        checkpoint: checkpoint.clone(),
        use_cache: cache_dir.is_some(),
        telemetry: telemetry.clone(),
        ..CheckParams::default()
    };
    // The reduction differentials re-run files directly (they compare
    // reduced vs unreduced reports, which must both actually explore).
    let explore_opts = rc11::check::ExploreOptions {
        record_traces: false,
        max_states,
        fingerprint,
        por,
        symmetry,
        dpor,
        budget,
        checkpoint,
        telemetry: telemetry.clone(),
        ..Default::default()
    };

    let trace = match &trace_path {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => {
                let mut w = rc11::check::TraceWriter::new(f);
                let options = rc11::check::obj(vec![
                    ("fingerprint", Json::Bool(fingerprint)),
                    ("por", Json::Bool(por)),
                    ("symmetry", Json::Bool(symmetry)),
                    ("dpor", Json::Bool(dpor)),
                    ("max_states", Json::Int(max_states as i64)),
                ]);
                if let Err(e) =
                    w.run_start(files.len(), workers.iter().copied().max().unwrap_or(1), options)
                {
                    eprintln!("rc11: --trace {path}: {e}");
                    return ExitCode::FAILURE;
                }
                Some(std::sync::Arc::new(std::sync::Mutex::new(w)))
            }
            Err(e) => {
                eprintln!("rc11: --trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let files_done = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let hb_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let heartbeat = match (progress, &telemetry) {
        (Some(secs), Some(tel)) => {
            let tel = std::sync::Arc::clone(tel);
            let stop = std::sync::Arc::clone(&hb_stop);
            let done = std::sync::Arc::clone(&files_done);
            let trace_hb = trace.clone();
            let total = files.len();
            let interval = std::time::Duration::from_secs_f64(secs);
            Some(std::thread::spawn(move || {
                use rc11::telemetry::Counter;
                use std::sync::atomic::Ordering;
                let start = std::time::Instant::now();
                let mut last_states = 0u64;
                let mut last_tick = std::time::Instant::now();
                loop {
                    // Sleep in small steps so the batch never waits a
                    // full interval for the heartbeat to notice the end.
                    let mut waited = std::time::Duration::ZERO;
                    while waited < interval {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let step = std::time::Duration::from_millis(50).min(interval - waited);
                        std::thread::sleep(step);
                        waited += step;
                    }
                    let snap = tel.snapshot();
                    let states = snap.get(Counter::States);
                    let rate = states.saturating_sub(last_states) as f64
                        / last_tick.elapsed().as_secs_f64().max(1e-9);
                    let d = done.load(Ordering::Relaxed);
                    let eta = if d > 0 && d < total {
                        let per_file = start.elapsed().as_secs_f64() / d as f64;
                        format!(", eta {:.0}s", per_file * (total - d) as f64)
                    } else {
                        String::new()
                    };
                    let prunes =
                        snap.get(Counter::SleepSetPrunes) + snap.get(Counter::PersistentSheds);
                    eprintln!(
                        "progress: {d}/{total} files, {states} states ({rate:.0}/s), \
                         frontier {} (peak {}), dup {}, prunes {prunes}, folds {}{eta}",
                        snap.frontier_depth,
                        snap.frontier_peak,
                        snap.get(Counter::DupHits),
                        snap.get(Counter::SymmetryFolds),
                    );
                    if let Some(tr) = &trace_hb {
                        if let Ok(mut w) = tr.lock() {
                            let _ = w.heartbeat(&snap, rate, d, total);
                        }
                    }
                    last_states = states;
                    last_tick = std::time::Instant::now();
                }
            }))
        }
        _ => None,
    };

    let mut passed = 0usize;
    let mut failed = 0usize;
    let mut full_transitions_total = 0usize;
    let mut por_transitions_total = 0usize;
    let mut nosym_states_total = 0usize;
    let mut sym_states_total = 0usize;
    let mut dpor_base_transitions_total = 0usize;
    let mut dpor_transitions_total = 0usize;
    if !quiet {
        let mut header = format!(
            "{:<16} {:>8} {:>10} {:>10} {:>10}",
            "NAME", "STATES", "RATE", "OBSERVED", "EXPECTED"
        );
        if por && !dpor {
            header.push_str(&format!(" {:>10}", "REDUCTION"));
        }
        if symmetry {
            header.push_str(&format!(" {:>10}", "SYM"));
        }
        if dpor {
            header.push_str(&format!(" {:>10}", "DPOR"));
        }
        header.push_str(&format!(" {:>10}", "NOTES"));
        println!("{header}  RESULT");
    }
    // `LoadError`'s Display already includes the path, so only the loaded
    // result is consumed here. Every file runs inside `catch_unwind`: a
    // panicking engine is reported as that file's failure and the batch
    // finishes — one poisoned input never hides the rest of the corpus.
    for (_path, loaded) in &files {
        let litmus = match loaded {
            Ok(l) => l,
            Err(e) => {
                eprintln!("rc11: {e}");
                broken += 1;
                continue;
            }
        };
        let run = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one(
                litmus,
                &workers,
                &service,
                &base_params,
                &explore_opts,
                por,
                symmetry,
                dpor,
                max_states,
                trace.as_deref(),
            )
        })) {
            Ok(run) => run,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|m| m.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                failed += 1;
                files_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if let Some(tr) = &trace {
                    if let Ok(mut w) = tr.lock() {
                        let _ = w.note(&format!("{}: panic contained: {msg}", litmus.name));
                    }
                }
                println!(
                    "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}  FAIL  panic contained: {msg}",
                    litmus.name, "-", "-", "-", "-", "-"
                );
                continue;
            }
        };
        files_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        full_transitions_total += run.full_transitions;
        por_transitions_total += run.por_transitions;
        nosym_states_total += run.nosym_states;
        sym_states_total += run.sym_states;
        dpor_base_transitions_total += run.dpor_base_transitions;
        dpor_transitions_total += run.dpor_transitions;
        let notes_cell = if run.notes.is_empty() {
            "-".to_string()
        } else {
            let codes: Vec<&str> = run.notes.iter().map(note_code).collect();
            codes.join(",")
        };
        let red = format!("{} {notes_cell:>10}", run.red);
        // The row's throughput comes from the engine-reported wall
        // clock (`EngineReport::wall`), not a CLI-side stopwatch.
        let rate_cell = {
            let secs = run.wall.as_secs_f64();
            if secs > 0.0 && run.states > 0 {
                format!("{:.0}/s", run.states as f64 / secs)
            } else {
                "-".to_string()
            }
        };
        if run.ok {
            passed += 1;
            if !quiet {
                println!(
                    "{:<16} {:>8} {rate_cell:>10} {:>10} {:>10}{red}  pass",
                    litmus.name,
                    run.states,
                    run.observed.len(),
                    litmus.expected.len()
                );
            }
        } else {
            failed += 1;
            println!(
                "{:<16} {:>8} {rate_cell:>10} {:>10} {:>10}{red}  FAIL  {}",
                litmus.name,
                run.states,
                run.observed.len(),
                litmus.expected.len(),
                run.first_divergence.unwrap_or_default()
            );
        }
        if !quiet {
            for n in &run.notes {
                println!("    note: {n}");
            }
        }
        if show_outcomes {
            for tuple in &run.observed {
                let vals: Vec<String> = tuple.iter().map(rc11::lang::parse::val_literal).collect();
                println!("    ({})", vals.join(", "));
            }
        }
    }

    hb_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(h) = heartbeat {
        let _ = h.join();
    }
    if let Some(tr) = &trace {
        if let Ok(mut w) = tr.lock() {
            let _ = w.stop(files.len(), passed, failed);
        }
    }

    print!(
        "\n{} file(s): {passed} passed, {failed} failed, {broken} unreadable; \
         engines: {:?} worker(s), fingerprint {}",
        files.len(),
        workers,
        if fingerprint { "on" } else { "off" }
    );
    if por && por_transitions_total > 0 {
        print!(
            "; POR reduction {:.2}x ({} transitions vs {} unreduced)",
            full_transitions_total as f64 / por_transitions_total as f64,
            por_transitions_total,
            full_transitions_total
        );
    }
    if symmetry && sym_states_total > 0 {
        print!(
            "; symmetry reduction {:.2}x ({} states vs {} unsymmetric)",
            nosym_states_total as f64 / sym_states_total as f64,
            sym_states_total,
            nosym_states_total
        );
    }
    if dpor && dpor_transitions_total > 0 {
        print!(
            "; DPOR reduction {:.2}x ({} transitions vs {} sleep-set)",
            dpor_base_transitions_total as f64 / dpor_transitions_total as f64,
            dpor_transitions_total,
            dpor_base_transitions_total
        );
    }
    if cache_dir.is_some() {
        let s = service.stats();
        print!(
            "; cache: {} hit(s) ({} mem, {} disk), {} miss(es), {:.0}% hit rate",
            s.cache.hits(),
            s.cache.mem_hits,
            s.cache.disk_hits,
            s.cache.misses,
            s.cache.hit_rate() * 100.0
        );
    }
    println!();
    if failed == 0 && broken == 0 && passed > 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Everything `cmd_run` needs to print and total one file's runs. Produced
/// inside the per-file `catch_unwind` harness so a panicking engine loses
/// only this file's row, never the batch.
struct FileRun {
    ok: bool,
    states: usize,
    /// Engine-reported wall clock of the last request-path run (the one
    /// whose states the row shows); drives the RATE column.
    wall: std::time::Duration,
    observed: std::collections::BTreeSet<Vec<rc11::core::Val>>,
    /// Pre-formatted REDUCTION / SYM / DPOR cells (possibly empty).
    red: String,
    notes: Vec<rc11::check::Note>,
    first_divergence: Option<String>,
    full_transitions: usize,
    por_transitions: usize,
    nosym_states: usize,
    sym_states: usize,
    dpor_base_transitions: usize,
    dpor_transitions: usize,
}

/// Compact code for the summary's NOTES column; the full [`Note`] prints
/// under the row.
fn note_code(n: &rc11::check::Note) -> &'static str {
    match n {
        rc11::check::Note::PorThreadCap { .. } => "por-cap",
        rc11::check::Note::DporLocationCap => "dpor-cap",
        rc11::check::Note::SymmetryOrbitCap { .. } => "sym-cap",
        rc11::check::Note::WorkerFault { .. } => "fault",
        rc11::check::Note::CheckpointError { .. } => "ckpt",
    }
}

/// Run one litmus file at every requested engine configuration (through
/// the shared [`CheckService`] request path) plus the enabled reduction
/// differentials, collecting verdicts, notes and totals.
#[allow(clippy::too_many_arguments)]
fn run_one(
    litmus: &Litmus,
    workers: &[usize],
    service: &CheckService,
    base_params: &CheckParams,
    explore_opts: &rc11::check::ExploreOptions,
    por: bool,
    symmetry: bool,
    dpor: bool,
    max_states: usize,
    trace: Option<&std::sync::Mutex<rc11::check::TraceWriter<std::fs::File>>>,
) -> FileRun {
    let mut ok = true;
    let mut states = 0usize;
    let mut wall = std::time::Duration::ZERO;
    let mut transitions = 0usize;
    let mut run_deadlocks = 0usize;
    let mut notes: Vec<rc11::check::Note> = Vec::new();
    let mut first_divergence: Option<String> = None;
    let mut observed: Option<std::collections::BTreeSet<Vec<rc11::core::Val>>> = None;
    let mut prev_workers = 0usize;
    for &w in workers {
        let mut params = base_params.clone();
        params.workers = w;
        let res = service.check_parts(
            &litmus.name,
            &litmus.prog,
            &litmus.observe,
            &litmus.expected,
            &params,
        );
        states = res.states;
        transitions = res.transitions;
        run_deadlocks = res.deadlocks;
        wall = res.wall;
        if let Some(tr) = trace {
            if let Ok(mut w) = tr.lock() {
                let _ = w.file_verdict(&res);
            }
        }
        for n in &res.notes {
            if !notes.contains(n) {
                notes.push(n.clone());
            }
        }
        if !res.pass && first_divergence.is_none() {
            first_divergence = Some(if res.stop == rc11::check::StopReason::WorkerFault {
                // The request path contained an engine panic; its message
                // is in the WorkerFault note.
                let msg = res
                    .notes
                    .iter()
                    .find_map(|n| match n {
                        rc11::check::Note::WorkerFault { message } => Some(message.clone()),
                        _ => None,
                    })
                    .unwrap_or_default();
                format!("@{w} worker(s): panic contained: {msg}")
            } else if res.stop == rc11::check::StopReason::StateCap {
                format!("@{w} worker(s): truncated at --max-states {max_states}")
            } else if !res.stop.is_complete() {
                format!(
                    "@{w} worker(s): stopped early ({}); \
                     {states} states explored is a sound lower bound",
                    res.stop
                )
            } else if res.deadlocks > 0 {
                format!("@{w} worker(s): {} deadlocked configuration(s)", res.deadlocks)
            } else {
                let missing: Vec<_> = res.expected.difference(&res.observed).collect();
                let extra: Vec<_> = res.observed.difference(&res.expected).collect();
                format!("@{w} worker(s): missing {missing:?}, unexpected {extra:?}")
            });
        }
        ok &= res.pass;
        // All requested engine configurations must also agree with
        // each other, not just with the expectation.
        if let Some(pobs) = &observed {
            if pobs != &res.observed {
                ok = false;
                first_divergence.get_or_insert(format!(
                    "engines disagree: {prev_workers} vs {w} worker(s) observe different sets"
                ));
            }
        }
        observed = Some(res.observed);
        prev_workers = w;
    }
    // With --por, decide the same test once unreduced (sequentially):
    // the reduction factor is unreduced/reduced transitions, and the
    // unreduced run doubles as a soundness differential — states and
    // outcome set must match the reduced runs exactly. Differential
    // re-runs never share the checkpoint directory.
    let mut full_transitions_total = 0usize;
    let mut por_transitions_total = 0usize;
    let mut reduction: Option<f64> = None;
    if por && !dpor {
        let full_opts = rc11::check::ExploreOptions {
            por: false,
            checkpoint: None,
            ..explore_opts.clone()
        };
        let (full, _, _) = litmus::run_with_opts(litmus, &Engine::Sequential, &full_opts);
        full_transitions_total = full.transitions;
        por_transitions_total = transitions;
        if full.states != states {
            ok = false;
            first_divergence.get_or_insert(format!(
                "POR changed the state count: {} reduced vs {} full",
                states, full.states
            ));
        }
        if Some(&full.observed) != observed.as_ref() {
            ok = false;
            first_divergence
                .get_or_insert("POR changed the observed outcome set".to_string());
        }
        if transitions > full.transitions {
            ok = false;
            first_divergence.get_or_insert(format!(
                "POR generated more transitions: {} reduced vs {} full",
                transitions, full.transitions
            ));
        }
        reduction = Some(full.transitions as f64 / transitions.max(1) as f64);
    }
    // With --symmetry, decide the same test once without it
    // (sequentially): the SYM factor is unsymmetric/symmetric states,
    // and the unsymmetric run doubles as a soundness differential —
    // the outcome set must match exactly and reduction must never
    // grow the state count.
    let mut nosym_states_total = 0usize;
    let mut sym_states_total = 0usize;
    let mut sym_factor: Option<f64> = None;
    if symmetry {
        let nosym_opts = rc11::check::ExploreOptions {
            symmetry: false,
            checkpoint: None,
            ..explore_opts.clone()
        };
        let (nosym, _, _) = litmus::run_with_opts(litmus, &Engine::Sequential, &nosym_opts);
        nosym_states_total = nosym.states;
        sym_states_total = states;
        if states > nosym.states {
            ok = false;
            first_divergence.get_or_insert(format!(
                "symmetry grew the state count: {} symmetric vs {} full",
                states, nosym.states
            ));
        }
        if Some(&nosym.observed) != observed.as_ref() {
            ok = false;
            first_divergence
                .get_or_insert("symmetry changed the observed outcome set".to_string());
        }
        sym_factor = Some(nosym.states as f64 / states.max(1) as f64);
    }
    // With --dpor, decide the same test once with sleep sets only
    // (sequentially): the DPOR factor is sleep-set / persistent-set
    // transitions, and the sleep-set run doubles as a soundness
    // differential — persistent sets may shed states *and*
    // transitions but must preserve the outcome set and the deadlock
    // count exactly.
    let mut dpor_base_transitions_total = 0usize;
    let mut dpor_transitions_total = 0usize;
    let mut dpor_factor: Option<f64> = None;
    if dpor {
        let base_opts = rc11::check::ExploreOptions {
            por: true,
            dpor: false,
            checkpoint: None,
            ..explore_opts.clone()
        };
        let (base, _, base_deadlocks) =
            litmus::run_with_opts(litmus, &Engine::Sequential, &base_opts);
        dpor_base_transitions_total = base.transitions;
        dpor_transitions_total = transitions;
        if states > base.states {
            ok = false;
            first_divergence.get_or_insert(format!(
                "DPOR grew the state count: {} persistent-set vs {} sleep-set",
                states, base.states
            ));
        }
        if transitions > base.transitions {
            ok = false;
            first_divergence.get_or_insert(format!(
                "DPOR generated more transitions: {} persistent-set vs {} sleep-set",
                transitions, base.transitions
            ));
        }
        if Some(&base.observed) != observed.as_ref() {
            ok = false;
            first_divergence
                .get_or_insert("DPOR changed the observed outcome set".to_string());
        }
        if run_deadlocks != base_deadlocks {
            ok = false;
            first_divergence.get_or_insert(format!(
                "DPOR changed the deadlock count: {run_deadlocks} persistent-set \
                 vs {base_deadlocks} sleep-set"
            ));
        }
        dpor_factor = Some(base.transitions as f64 / transitions.max(1) as f64);
    }
    // One separator space plus a 10-wide cell per enabled reduction,
    // matching the header's ` {:>10}` REDUCTION / SYM / DPOR columns.
    let mut red =
        reduction.map(|r| format!(" {:>10}", format!("{r:.2}x"))).unwrap_or_default();
    if let Some(f) = sym_factor {
        red.push_str(&format!(" {:>10}", format!("{f:.2}x")));
    }
    if let Some(d) = dpor_factor {
        red.push_str(&format!(" {:>10}", format!("{d:.2}x")));
    }
    FileRun {
        ok,
        states,
        wall,
        observed: observed.unwrap_or_default(),
        red,
        notes,
        first_divergence,
        full_transitions: full_transitions_total,
        por_transitions: por_transitions_total,
        nosym_states: nosym_states_total,
        sym_states: sym_states_total,
        dpor_base_transitions: dpor_base_transitions_total,
        dpor_transitions: dpor_transitions_total,
    }
}

// ---------------------------------------------------------------------
// rc11 lint
// ---------------------------------------------------------------------

fn cmd_lint(raw: &[String]) -> ExitCode {
    let mut opts = Opts { args: raw.to_vec() };
    let deny_warnings = opts.flag(&["--deny-warnings"]);
    if let Some(bad) = opts.args.iter().find(|a| a.starts_with('-')) {
        return fail_usage(&format!("unknown option `{bad}`"));
    }
    if opts.args.is_empty() {
        return fail_usage("lint: no .litmus files or directories given");
    }

    // Enumerate the work list up front; every file is then linted
    // independently so one unreadable or unparsable file never hides the
    // findings in the rest of the batch.
    let mut files: Vec<PathBuf> = Vec::new();
    let mut unreadable = 0usize;
    for arg in &opts.args {
        let p = PathBuf::from(arg);
        if p.is_dir() {
            match std::fs::read_dir(&p) {
                Ok(entries) => {
                    let mut found = Vec::new();
                    for entry in entries {
                        match entry {
                            Ok(e) => {
                                let f = e.path();
                                if f.extension().is_some_and(|x| x == "litmus") {
                                    found.push(f);
                                }
                            }
                            Err(e) => {
                                eprintln!("rc11: {}: {e}", p.display());
                                unreadable += 1;
                            }
                        }
                    }
                    if found.is_empty() {
                        eprintln!("rc11: no .litmus files in {}", p.display());
                        unreadable += 1;
                    }
                    found.sort();
                    files.extend(found);
                }
                Err(e) => {
                    eprintln!("rc11: {}: {e}", p.display());
                    unreadable += 1;
                }
            }
        } else {
            files.push(p);
        }
    }

    let mut warnings = 0usize;
    let mut errors = 0usize;
    for path in &files {
        let file = path.display().to_string();
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rc11: {file}: {e}");
                unreadable += 1;
                continue;
            }
        };
        let parsed = match parse_litmus(&src) {
            Ok(p) => p,
            Err(e) => {
                // A parse error is a diagnostic like any other: report it
                // and keep linting the rest of the batch.
                println!("{file}:{e}");
                errors += 1;
                continue;
            }
        };
        for d in analyze_lint(&parsed) {
            println!("{}", render_diagnostic(&file, &d));
            match d.severity {
                Severity::Warning => warnings += 1,
                Severity::Error => errors += 1,
            }
        }
    }

    println!(
        "{} file(s): {errors} error(s), {warnings} warning(s), {unreadable} unreadable{}",
        files.len(),
        if deny_warnings { " (denying warnings)" } else { "" }
    );
    let warnings_fail = deny_warnings && warnings > 0;
    if errors == 0 && unreadable == 0 && !warnings_fail && !files.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// rc11 fuzz
// ---------------------------------------------------------------------

fn cmd_fuzz(raw: &[String]) -> ExitCode {
    let mut opts = Opts { args: raw.to_vec() };
    let seed = match opts.parsed("--seed", 1u64) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let iters = match opts.parsed("--iters", 200usize) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let workers = match opts.usize_list("--workers", &[2, 4]) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let threads = match opts.usize_list("--threads", &[2, 4]) {
        Ok(v) if v.len() == 2 && v[0] >= 1 && v[0] <= v[1] => v,
        Ok(_) => return fail_usage("--threads: expected MIN,MAX with 1 <= MIN <= MAX"),
        Err(e) => return fail_usage(&e),
    };
    let stmts = match opts.parsed("--stmts", 4usize) {
        Ok(v) if v >= 1 => v,
        Ok(_) => return fail_usage("--stmts: must be at least 1"),
        Err(e) => return fail_usage(&e),
    };
    let max_states = match opts.parsed("--max-states", 1usize << 18) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let samples = match opts.parsed("--samples", 24usize) {
        Ok(v) => v,
        Err(e) => return fail_usage(&e),
    };
    let por = opts.flag(&["--por"]);
    let symmetry = opts.flag(&["--symmetry"]);
    let dpor = opts.flag(&["--dpor"]);
    let chaos = opts.flag(&["--chaos"]);
    if let Some(bad) = opts.args.first() {
        return fail_usage(&format!("fuzz takes no positional arguments (got `{bad}`)"));
    }

    // Injected worker panics are contained by the engines' catch_unwind
    // harnesses, but the default panic hook would still print a backtrace
    // per fault — hundreds of lines of noise over a chaos run. Filter
    // exactly the injected ones; real panics keep the default report.
    if chaos {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("chaos: injected"));
            if !injected {
                default_hook(info);
            }
        }));
    }

    let gen_opts = GenOptions {
        min_threads: threads[0],
        max_threads: threads[1],
        max_stmts: stmts,
        // The symmetry lane is only interesting on programs with orbits
        // (and the DPOR lane composes with it), so bias the generator
        // towards cloned thread bodies.
        clone_threads: symmetry || dpor,
        ..Default::default()
    };
    let diff_opts = DiffOptions {
        workers,
        max_states,
        samples,
        por,
        symmetry,
        dpor,
        chaos,
        ..Default::default()
    };

    println!(
        "fuzzing {iters} programs from seed {seed} \
         ({}–{} threads, ≤{stmts} statements/thread, workers {:?}{}{}{}{})",
        gen_opts.min_threads,
        gen_opts.max_threads,
        diff_opts.workers,
        if por { ", POR parity lane on" } else { "" },
        if symmetry { ", symmetry parity lane on" } else { "" },
        if dpor { ", DPOR parity lane on" } else { "" },
        if chaos { ", chaos lane on" } else { "" }
    );
    let step = (iters / 10).max(1);
    let report = fuzz(seed, iters, &gen_opts, &diff_opts, |r| {
        if r.iters % step == 0 && r.failure.is_none() {
            println!(
                "  {}/{iters}: {} passed, {} skipped, {} oracle states total",
                r.iters, r.passed, r.skipped, r.total_states
            );
        }
    });

    match &report.failure {
        None => {
            println!(
                "clean: {} checked, {} skipped (state cap), {} oracle states total",
                report.passed, report.skipped, report.total_states
            );
            ExitCode::SUCCESS
        }
        Some(f) => {
            println!(
                "FAILURE at iteration {} (seed {}): {}\n\nshrunk repro ({} statements):\n\n{}",
                f.iter,
                f.seed,
                f.what,
                f.shrunk.len(),
                f.source
            );
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------
// rc11 serve
// ---------------------------------------------------------------------

fn cmd_serve(raw: &[String]) -> ExitCode {
    let mut opts = Opts { args: raw.to_vec() };
    let addr = match opts.value_of("--addr") {
        Ok(v) => v.unwrap_or_else(|| "127.0.0.1:0".to_string()),
        Err(e) => return fail_usage(&e),
    };
    let pool = match opts.parsed("--pool", 2usize) {
        Ok(v) if v >= 1 => v,
        Ok(_) => return fail_usage("--pool: must be at least 1"),
        Err(e) => return fail_usage(&e),
    };
    let queue_cap = match opts.parsed("--queue", 64usize) {
        Ok(v) if v >= 1 => v,
        Ok(_) => return fail_usage("--queue: must be at least 1"),
        Err(e) => return fail_usage(&e),
    };
    let cache_cap = match opts.parsed("--cache-cap", 1024usize) {
        Ok(v) if v >= 1 => v,
        Ok(_) => return fail_usage("--cache-cap: must be at least 1"),
        Err(e) => return fail_usage(&e),
    };
    let cache_dir = match opts.value_of("--cache") {
        Ok(v) => v.map(PathBuf::from),
        Err(e) => return fail_usage(&e),
    };
    let metrics = opts.flag(&["--metrics"]);
    if let Some(bad) = opts.args.first() {
        return fail_usage(&format!("serve takes no positional arguments (got `{bad}`)"));
    }

    let config = DaemonConfig { addr, pool, queue_cap, cache_cap, cache_dir, metrics };
    match daemon::start(&config) {
        Ok(handle) => {
            // Scripts (`scripts/daemon_smoke.sh`) parse this line for the
            // resolved ephemeral port, so flush it through any pipe.
            println!("rc11d: listening on {}", handle.addr());
            let _ = std::io::stdout().flush();
            handle.join();
            println!("rc11d: stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rc11: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------
// rc11 submit
// ---------------------------------------------------------------------

fn cmd_submit(raw: &[String]) -> ExitCode {
    let mut opts = Opts { args: raw.to_vec() };
    let addr = match opts.value_of("--addr") {
        Ok(Some(v)) => v,
        Ok(None) => return fail_usage("submit: --addr is required"),
        Err(e) => return fail_usage(&e),
    };
    let workers = match opts.parsed("--workers", 1usize) {
        Ok(v) if v >= 1 => v,
        Ok(_) => return fail_usage("--workers: must be at least 1"),
        Err(e) => return fail_usage(&e),
    };
    let no_cache = opts.flag(&["--no-cache"]);
    let expect_all_hits = opts.flag(&["--expect-all-hits"]);
    let want_stats = opts.flag(&["--stats"]);
    let ping_only = opts.flag(&["--ping"]);
    let want_shutdown = opts.flag(&["--shutdown"]);
    if let Some(bad) = opts.args.iter().find(|a| a.starts_with('-')) {
        return fail_usage(&format!("unknown option `{bad}`"));
    }

    let mut client = match daemon::Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rc11: submit: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if ping_only {
        return match client.ping() {
            Ok(true) => {
                println!("pong");
                ExitCode::SUCCESS
            }
            Ok(false) => {
                eprintln!("rc11: submit: unexpected ping response");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("rc11: submit: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Enumerate .litmus files (directories sorted, like `rc11 run`).
    let mut files: Vec<PathBuf> = Vec::new();
    let mut broken = 0usize;
    for arg in &opts.args {
        let p = PathBuf::from(arg);
        if p.is_dir() {
            match std::fs::read_dir(&p) {
                Ok(entries) => {
                    let mut found: Vec<PathBuf> = entries
                        .flatten()
                        .map(|e| e.path())
                        .filter(|f| f.extension().is_some_and(|x| x == "litmus"))
                        .collect();
                    if found.is_empty() {
                        eprintln!("rc11: no .litmus files in {}", p.display());
                        broken += 1;
                    }
                    found.sort();
                    files.extend(found);
                }
                Err(e) => {
                    eprintln!("rc11: {}: {e}", p.display());
                    broken += 1;
                }
            }
        } else {
            files.push(p);
        }
    }
    if files.is_empty() && !want_stats && !want_shutdown {
        return fail_usage("submit: no .litmus files or directories given");
    }

    let mut failed = 0usize;
    let mut missed = 0usize;
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rc11: {}: {e}", path.display());
                broken += 1;
                continue;
            }
        };
        let mut extra = vec![("workers", Json::Int(workers as i64))];
        if no_cache {
            extra.push(("no_cache", Json::Bool(true)));
        }
        let response = match client.check_with(&source, extra) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("rc11: {}: {e}", path.display());
                failed += 1;
                continue;
            }
        };
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            let err = response.get("error").and_then(Json::as_str).unwrap_or("unknown error");
            println!("{:<24} FAIL  {err}", path.display());
            failed += 1;
            continue;
        }
        let name = response.get("name").and_then(Json::as_str).unwrap_or("?");
        let served = response.get("served").and_then(Json::as_str).unwrap_or("?");
        let states = response.get("states").and_then(Json::as_i64).unwrap_or(-1);
        let stop = response.get("stop").and_then(Json::as_str).unwrap_or("?");
        let pass = response.get("pass").and_then(Json::as_bool) == Some(true);
        let hit = response.get("cache_hit").and_then(Json::as_bool) == Some(true);
        if !hit {
            missed += 1;
        }
        println!(
            "{name:<16} {served:>10} {states:>8} {stop:>12}  {}",
            if pass { "pass" } else { "FAIL" }
        );
        if !pass {
            failed += 1;
        }
    }

    if want_stats {
        match client.stats() {
            Ok(s) => println!("stats: {}", s.to_string_line()),
            Err(e) => {
                eprintln!("rc11: submit: stats: {e}");
                failed += 1;
            }
        }
    }
    if expect_all_hits && missed > 0 {
        eprintln!("rc11: submit: {missed} response(s) were not served from the cache");
        failed += 1;
    }
    if want_shutdown {
        match client.shutdown() {
            Ok(r) if r.get("ok").and_then(Json::as_bool) == Some(true) => {
                println!("daemon stopping");
            }
            Ok(_) | Err(_) => {
                eprintln!("rc11: submit: shutdown request failed");
                failed += 1;
            }
        }
    }

    if failed == 0 && broken == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// rc11 top
// ---------------------------------------------------------------------

fn cmd_top(raw: &[String]) -> ExitCode {
    let mut opts = Opts { args: raw.to_vec() };
    let interval = match opts.parsed("--interval", 2.0f64) {
        Ok(v) if v > 0.0 => v,
        Ok(_) => return fail_usage("--interval: must be positive"),
        Err(e) => return fail_usage(&e),
    };
    let once = opts.flag(&["--once"]);
    if let Some(bad) = opts.args.iter().find(|a| a.starts_with('-')) {
        return fail_usage(&format!("unknown option `{bad}`"));
    }
    let addr = match opts.args.as_slice() {
        [a] => a.clone(),
        [] => return fail_usage("top: daemon address required"),
        _ => return fail_usage("top: exactly one daemon address"),
    };

    loop {
        // Reconnect each tick: a restarted daemon keeps the dashboard
        // alive instead of wedging a dead connection.
        let stats = daemon::Client::connect(&addr).and_then(|mut c| c.stats());
        match stats {
            Ok(s) => render_top(&addr, &s),
            Err(e) => {
                eprintln!("rc11: top: {addr}: {e}");
                if once {
                    return ExitCode::FAILURE;
                }
            }
        }
        if once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

fn render_top(addr: &str, s: &Json) {
    let int = |key: &str| s.get(key).and_then(Json::as_i64).unwrap_or(0);
    let float = |key: &str| s.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    println!("rc11d {addr} — up {:.1}s", float("uptime_secs"));
    println!(
        "requests {} | explored {} | cache {} mem + {} disk hits, {} misses ({:.0}% hit rate)",
        int("requests"),
        int("explored_runs"),
        int("mem_hits"),
        int("disk_hits"),
        int("misses"),
        float("hit_rate") * 100.0
    );
    println!(
        "states {} ({:.0}/s) | transitions {} | queue {} (peak {})",
        int("states_explored"),
        float("states_per_sec"),
        int("transitions_explored"),
        int("queue_depth"),
        int("queue_peak")
    );
    if let Some(cfg) = s.get("config") {
        let cint = |key: &str| cfg.get(key).and_then(Json::as_i64).unwrap_or(0);
        println!(
            "config: pool {}, queue cap {}, cache cap {}, metrics {}",
            cint("pool"),
            cint("queue_cap"),
            cint("cache_cap"),
            if cfg.get("metrics").and_then(Json::as_bool) == Some(true) { "on" } else { "off" }
        );
    }
    let Some(m) = s.get("metrics") else {
        println!("(extended metrics off — start the daemon with --metrics)");
        return;
    };
    println!("latency (ms):     count      p50      p90      p99      max");
    for (label, key) in
        [("probe", "probe_latency"), ("explore", "explore_latency"), ("queue-wait", "queue_wait")]
    {
        if let Some(lat) = m.get(key) {
            let f = |k: &str| lat.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            println!(
                "  {label:<12} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                lat.get("count").and_then(Json::as_i64).unwrap_or(0),
                f("p50_ms"),
                f("p90_ms"),
                f("p99_ms"),
                f("max_ms")
            );
        }
    }
    if let Some(workers) = m.get("workers").and_then(Json::as_arr) {
        let cells: Vec<String> = workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                format!(
                    "w{i} {:.0}% ({} jobs, {:.2}s busy)",
                    w.get("utilization").and_then(Json::as_f64).unwrap_or(0.0) * 100.0,
                    w.get("jobs").and_then(Json::as_i64).unwrap_or(0),
                    w.get("busy_secs").and_then(Json::as_f64).unwrap_or(0.0)
                )
            })
            .collect();
        println!("workers: {}", cells.join(" | "));
    }
    if let Some(classes) = m.get("fp_classes") {
        let cells: Vec<String> = ["singleton", "warm", "hot"]
            .iter()
            .filter_map(|class| {
                classes.get(class).map(|c| {
                    format!(
                        "{class} {} fps, {} probes, {} hits ({:.0}%)",
                        c.get("fingerprints").and_then(Json::as_i64).unwrap_or(0),
                        c.get("probes").and_then(Json::as_i64).unwrap_or(0),
                        c.get("hits").and_then(Json::as_i64).unwrap_or(0),
                        c.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0) * 100.0
                    )
                })
            })
            .collect();
        println!("fp classes: {}", cells.join(" | "));
    }
}

// ---------------------------------------------------------------------
// rc11 trace-report
// ---------------------------------------------------------------------

fn cmd_trace_report(raw: &[String]) -> ExitCode {
    let opts = Opts { args: raw.to_vec() };
    if let Some(bad) = opts.args.iter().find(|a| a.starts_with('-')) {
        return fail_usage(&format!("unknown option `{bad}`"));
    }
    let file = match opts.args.as_slice() {
        [f] => f.clone(),
        [] => return fail_usage("trace-report: no trace file given"),
        _ => return fail_usage("trace-report: exactly one trace file"),
    };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rc11: trace-report: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match rc11::check::read_trace(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rc11: trace-report: {file}: invalid trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    use rc11::telemetry::{Counter, Phase};
    println!("trace: {} line(s) over {}ms", stats.lines, stats.last_ms);
    let events: Vec<String> =
        stats.events_by_kind.iter().map(|(k, n)| format!("{k} {n}")).collect();
    println!("events: {}", events.join(", "));
    println!(
        "files: {} ({} passed, {} failed), {} cache hit(s), {} with telemetry",
        stats.files,
        stats.passed,
        stats.files - stats.passed,
        stats.cache_hits,
        stats.files_with_telemetry
    );
    println!(
        "states {}, transitions {}, wall {:.1}ms",
        stats.states, stats.transitions, stats.wall_ms
    );
    let total_phase: u64 = Phase::ALL.iter().map(|&p| stats.phase(p)).sum();
    if total_phase > 0 {
        println!("phase attribution (files with telemetry):");
        for p in Phase::ALL {
            let ns = stats.phase(p);
            println!(
                "  {:<12} {:>10.3}ms {:>6.1}%",
                p.name(),
                ns as f64 / 1e6,
                ns as f64 * 100.0 / total_phase as f64
            );
        }
    }
    println!("reduction attribution:");
    for c in [
        Counter::DupHits,
        Counter::FpCollisions,
        Counter::SleepSetPrunes,
        Counter::PersistentSheds,
        Counter::SymmetryFolds,
        Counter::CapDegradations,
    ] {
        println!("  {:<20} {}", c.name(), stats.counter(c));
    }
    println!(
        "engine counters: expansions {}, injector flushes {}, keep-local retained {}",
        stats.counter(Counter::Expansions),
        stats.counter(Counter::InjectorFlushes),
        stats.counter(Counter::KeepLocalRetained)
    );
    ExitCode::SUCCESS
}
