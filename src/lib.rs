//! # rc11 — verifying C11-style weak memory libraries, executably
//!
//! Umbrella crate for the reproduction of *Verifying C11-Style Weak Memory
//! Libraries* (Dalvandi & Dongol, PPoPP 2021): re-exports every layer and a
//! [`prelude`] for examples and tests.
//!
//! The layers, bottom-up:
//!
//! * [`core`] (rc11-core) — the RC11 RAR memory model: timestamped
//!   client/library component states, views, the Figure-5 transition rules
//!   (fast engine + literal rational-timestamp engine);
//! * [`lang`] (rc11-lang) — the Figure-4 program grammar with method-call
//!   holes, its AST semantics, and the CFG machine;
//! * [`analyze`] (rc11-analyze) — static analyses run before exploration:
//!   thread-symmetry detection, static may-conflict matrices, and the
//!   `rc11 lint` diagnostics pass;
//! * [`objects`] (rc11-objects) — abstract objects (Section 4): the
//!   Figure-6 lock, the message-passing stack, extensions;
//! * [`assert`] (rc11-assert) — the Section-5.1 observability assertion
//!   language and proof outlines;
//! * [`telemetry`] (rc11-telemetry) — the exploration telemetry spine:
//!   sharded relaxed counters, phase timers, and serializable snapshots
//!   behind `ExploreOptions::telemetry` (DESIGN.md §9);
//! * [`check`] (rc11-check) — exhaustive (sequential & parallel) state-space
//!   exploration, proof-outline checking with Owicki–Gries classification;
//! * [`refine`] (rc11-refine) — contextual refinement (Section 6): trace
//!   refinement, forward simulation, and the brute-force baseline;
//! * [`locks`] (rc11-locks) — the sequence lock and ticket lock (plus
//!   extensions and deliberately-broken negative controls);
//! * [`litmus`] (rc11-litmus) — a litmus-test gallery with expected RC11
//!   RAR verdicts, plus loaders for the `.litmus` text corpus at
//!   `corpus/` (grammar in `corpus/README.md`).
//!
//! The umbrella crate adds [`daemon`] — rc11d, the cache-fronted
//! checking daemon behind `rc11 serve`: JSON lines over TCP into the
//! shared [`check::CheckService`] request path, with a canonical-
//! fingerprint verdict cache (memory LRU over a checksummed disk spill).
//!
//! The `rc11` binary (`src/bin/rc11.rs`) batch-runs `.litmus` corpora
//! under any engine configuration (`rc11 run corpus/ --workers 1,2,4,8`),
//! drives the generative differential-fuzz harness
//! (`rc11 fuzz --seed S --iters N`), and hosts/queries the daemon
//! (`rc11 serve`, `rc11 submit`).

pub mod daemon;
pub mod figures;
pub mod lemma3;

pub use rc11_analyze as analyze;
pub use rc11_assert as assert;
pub use rc11_check as check;
pub use rc11_core as core;
pub use rc11_lang as lang;
pub use rc11_litmus as litmus;
pub use rc11_locks as locks;
pub use rc11_objects as objects;
pub use rc11_refine as refine;
pub use rc11_telemetry as telemetry;

/// Everything the examples and integration tests need, in one import.
pub mod prelude {
    pub use rc11_assert::dsl::*;
    pub use rc11_assert::{EvalCtx, OpPat, Pred, ProofOutline};
    pub use rc11_check::{
        check_outline, check_outline_with, choose_engine, par_explore, sample_terminals, Budget,
        CancelToken, ChaosState, CheckpointOpts, Engine, EngineReport, ExploreOptions, Explorer,
        FaultPlan, Note, OutlineReport, StopReason,
    };
    pub use rc11_core::{Combined, Comp, InitLoc, Loc, OpId, Tid, Val};
    pub use rc11_lang::builder::*;
    pub use rc11_lang::inline::instantiate;
    pub use rc11_lang::machine::{Config, NoObjects, StepOptions};
    pub use rc11_lang::parse::{parse_litmus, ParseError, ParsedLitmus};
    pub use rc11_lang::{compile, CfgProgram, Com, Method, ObjRef, Program, Reg, VarRef};
    pub use rc11_objects::AbstractObjects;
}
