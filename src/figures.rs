//! The paper's figures as reusable artifacts: programs, proof outlines and
//! expected verdicts, shared by the examples, integration tests and
//! benches.
//!
//! * [`fig1`] / [`fig2`] — the message-passing programs of Figures 1–2
//!   (relaxed vs synchronising stack);
//! * [`fig3`] — the Figure-3 proof outline for Figure 2's program;
//! * [`fig7`] — the lock-synchronisation client of Figure 7 with its full
//!   Owicki–Gries outline (Lemma 4).

use rc11_assert::dsl::*;
use rc11_assert::{OpPat, Pred, ProofOutline};
use rc11_core::Val;
use rc11_lang::builder::*;
use rc11_lang::{ObjRef, Program, Reg, VarRef};

/// A figure artifact: the program plus handles to its named entities.
pub struct MpFigure {
    /// The program.
    pub prog: Program,
    /// Client data variable `d`.
    pub d: VarRef,
    /// The stack `s`.
    pub s: ObjRef,
    /// Thread 2's `r1` (pop result).
    pub r1: Reg,
    /// Thread 2's `r2` (data read).
    pub r2: Reg,
}

fn mp_figure(name: &str, sync: bool) -> MpFigure {
    let mut p = ProgramBuilder::new(name);
    let d = p.client_var("d", 0);
    let s = p.stack("s");
    let t1 = ThreadBuilder::new();
    p.add_thread(
        t1,
        seq([
            lab(1, wr(d, 5)),
            lab(2, if sync { push_rel(s, 1) } else { push(s, 1) }),
        ]),
    );
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(
        t2,
        seq([
            lab(3, do_until(if sync { pop_acq(s, r1) } else { pop(s, r1) }, eq(r1, 1))),
            lab(4, rd(r2, d)),
            lab(5, Com::Skip),
        ]),
    );
    use rc11_lang::Com;
    MpFigure { prog: p.build(), d, s, r1, r2 }
}

/// Figure 1: unsynchronised message passing via a stack.
/// Postcondition: `r2 = 0 ∨ r2 = 5` (the weak outcome is reachable).
pub fn fig1() -> MpFigure {
    mp_figure("fig1-mp-unsync", false)
}

/// Figure 2: publication via a synchronising stack (`push^R` / `pop^A`).
/// Postcondition: `r2 = 5`.
pub fn fig2() -> MpFigure {
    mp_figure("fig2-mp-sync", true)
}

/// The Figure-3 proof outline for Figure 2's program.
///
/// Thread 1 (labels 1–2) and thread 2 (labels 3–5, where 5 is the final
/// point), transcribing the figure:
///
/// ```text
/// {[d = 0]1 ∧ [d = 0]2 ∧ [s.pop emp]1 ∧ [s.pop emp]2}           (initial)
/// T1 1: {¬⟨s.pop 1⟩2 ∧ [d = 0]1}        d := 5
///    2: {¬⟨s.pop 1⟩2 ∧ [d = 5]1}        s.push^R(1)
/// T2 3: {⟨s.pop 1⟩[d = 5]2}             do r1 := s.pop^A() until r1 = 1
///    4: {[d = 5]2}                      r2 ← d
///    5: {r2 = 5}
/// ```
pub fn fig3_outline(f: &MpFigure) -> ProofOutline {
    ProofOutline::new("figure-3", 2)
        .pre(0, 1, pand([pnot(can_pop(1, f.s, 1)), dobs(0, f.d, 0)]))
        .pre(0, 2, pand([pnot(can_pop(1, f.s, 1)), dobs(0, f.d, 5)]))
        .pre(1, 3, cond_pop(1, f.s, 1, f.d, 5))
        .pre(1, 4, dobs(1, f.d, 5))
        .pre(1, 5, reg_eq(1, f.r2, 5))
        .post(reg_eq(1, f.r2, 5))
}

/// The Figure-7 artifact.
pub struct Fig7 {
    /// The program.
    pub prog: Program,
    /// Client variables `d1`, `d2`.
    pub d1: VarRef,
    /// Second data variable.
    pub d2: VarRef,
    /// The lock `l`.
    pub l: ObjRef,
    /// Thread 2's lock-version register `rl`.
    pub rl: Reg,
    /// Thread 2's data registers.
    pub r1: Reg,
    /// Second data register.
    pub r2: Reg,
}

/// Figure 7's program: two lock-protected critical sections over `d1`/`d2`.
///
/// `l.Acquire(rl)` in thread 2 binds the lock *version* (the paper's proof
/// device); thread 1's acquire discards it. Labels 1–4 are the paper's
/// statement numbers; label 5 is the termination point (`pc_t = 5`).
pub fn fig7() -> Fig7 {
    use rc11_lang::Com;
    let mut p = ProgramBuilder::new("fig7-lock-client");
    let d1 = p.client_var("d1", 0);
    let d2 = p.client_var("d2", 0);
    let l = p.lock("l");

    let t1 = ThreadBuilder::new();
    p.add_thread(
        t1,
        seq([
            lab(1, acquire(l)),
            lab(2, wr(d1, 5)),
            lab(3, wr(d2, 5)),
            lab(4, release(l)),
            lab(5, Com::Skip),
        ]),
    );

    let mut t2 = ThreadBuilder::new();
    let rl = t2.reg("rl");
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(
        t2,
        seq([
            lab(1, acquire_into(l, rl)),
            lab(2, rd(r1, d1)),
            lab(3, rd(r2, d2)),
            lab(4, release(l)),
            lab(5, Com::Skip),
        ]),
    );
    Fig7 { prog: p.build(), d1, d2, l, rl, r1, r2 }
}

/// The full Figure-7 proof outline (Lemma 4), transcribed annotation by
/// annotation. Threads are 0-indexed (`tid 0` is the paper's thread 1).
///
/// One benign adaptation: the paper's invariant conjunct `rl ∈ {1, 3}` is
/// written `rl ∈ {⊥, 1, 3}` because `rl` is unset until thread 2's acquire
/// executes (the paper's Isabelle model quantifies over initialised local
/// stores).
pub fn fig7_outline(f: &Fig7) -> ProofOutline {
    let in_cs = |tid: usize| at(tid, [2, 3, 4]);

    // Inv ≡ ¬(pc1 ∈ {2,3,4} ∧ pc2 ∈ {2,3,4}) ∧ rl ∈ {⊥, 1, 3}
    let inv = pand([
        pnot(pand([in_cs(0), in_cs(1)])),
        Pred::RegIn {
            tid: rc11_core::Tid(1),
            reg: f.rl,
            vals: vec![Val::Bot, Val::Int(1), Val::Int(3)],
        },
    ]);

    // P_po ≡ (pc2 = 1 ⇒ ¬⟨l.release_2⟩2) ∧ H l.init_0
    let p_po = pand([
        imp(at(1, [1]), pnot(pobs_op(1, f.l, OpPat::Release(2)))),
        hidden(f.l, OpPat::Init),
    ]);

    // P1 ≡ [d1 = 0]1 ∧ [d2 = 0]1 ∧ (pc2 = 1 ⇒ [l.init_0]1 ∧ [l.init_0]2)
    //      ∧ (pc2 ∈ {2,3,4} ⇒ C l.acquire_1)
    let p1 = pand([
        dobs(0, f.d1, 0),
        dobs(0, f.d2, 0),
        imp(
            at(1, [1]),
            pand([dobs_op(0, f.l, OpPat::Init), dobs_op(1, f.l, OpPat::Init)]),
        ),
        imp(in_cs(1), covered_op(f.l, OpPat::Acquire(1))),
    ]);
    let p2 = pand([dobs(0, f.d1, 0), dobs(0, f.d2, 0), p_po.clone()]);
    let p3 = pand([dobs(0, f.d1, 5), dobs(0, f.d2, 0), p_po.clone()]);
    let p4 = pand([dobs(0, f.d1, 5), dobs(0, f.d2, 5), p_po]);

    // Q'1 ≡ pc1 = 5 ∧ ⟨l.release_2⟩[d1 = 5]2 ∧ ⟨l.release_2⟩[d2 = 5]2
    let q1p = pand([
        at(0, [5]),
        cond_obs_op(1, f.l, OpPat::Release(2), f.d1, 5),
        cond_obs_op(1, f.l, OpPat::Release(2), f.d2, 5),
    ]);
    // Q1 ≡ (pc1 ∉ {2,3,4} ⇒ ([l.init_0]2 ∧ [d1 = 0]2 ∧ [d2 = 0]2) ∨ Q'1)
    //      ∧ (pc1 = 1 ⇒ [l.init_0]1) ∧ (pc1 = 5 ⇒ H l.init_0)
    let q1 = pand([
        imp(
            pnot(in_cs(0)),
            por([
                pand([dobs_op(1, f.l, OpPat::Init), dobs(1, f.d1, 0), dobs(1, f.d2, 0)]),
                q1p,
            ]),
        ),
        imp(at(0, [1]), dobs_op(0, f.l, OpPat::Init)),
        imp(at(0, [5]), hidden(f.l, OpPat::Init)),
    ]);
    // Q2 ≡ (rl = 1 ⇒ [d1 = 0]2 ∧ [d2 = 0]2) ∧ (rl = 3 ⇒ [d1 = 5]2 ∧ [d2 = 5]2)
    let q2 = pand([
        imp(reg_eq(1, f.rl, 1), pand([dobs(1, f.d1, 0), dobs(1, f.d2, 0)])),
        imp(reg_eq(1, f.rl, 3), pand([dobs(1, f.d1, 5), dobs(1, f.d2, 5)])),
    ]);
    // Q3 ≡ (rl = 1 ⇒ r1 = 0 ∧ [d2 = 0]2) ∧ (rl = 3 ⇒ r1 = 5 ∧ [d2 = 5]2)
    let q3 = pand([
        imp(reg_eq(1, f.rl, 1), pand([reg_eq(1, f.r1, 0), dobs(1, f.d2, 0)])),
        imp(reg_eq(1, f.rl, 3), pand([reg_eq(1, f.r1, 5), dobs(1, f.d2, 5)])),
    ]);
    // Q4 ≡ (rl = 1 ⇒ r1 = 0 ∧ r2 = 0) ∧ (rl = 3 ⇒ r1 = 5 ∧ r2 = 5)
    let q4 = pand([
        imp(reg_eq(1, f.rl, 1), pand([reg_eq(1, f.r1, 0), reg_eq(1, f.r2, 0)])),
        imp(reg_eq(1, f.rl, 3), pand([reg_eq(1, f.r1, 5), reg_eq(1, f.r2, 5)])),
    ]);
    // Final: (r1 = 0 ∧ r2 = 0) ∨ (r1 = 5 ∧ r2 = 5)
    let q5 = por([
        pand([reg_eq(1, f.r1, 0), reg_eq(1, f.r2, 0)]),
        pand([reg_eq(1, f.r1, 5), reg_eq(1, f.r2, 5)]),
    ]);

    ProofOutline::new("figure-7", 2)
        .invariant(inv)
        .pre(0, 1, p1)
        .pre(0, 2, p2)
        .pre(0, 3, p3)
        .pre(0, 4, p4)
        .pre(1, 1, q1)
        .pre(1, 2, q2)
        .pre(1, 3, q3)
        .pre(1, 4, q4)
        .pre(1, 5, q5.clone())
        .post(q5)
}
