//! The six proof rules of Lemma 3, as checkable judgements.
//!
//! Each rule is a Hoare triple about one abstract-lock transition,
//! quantified over every reachable configuration of a harness program:
//! wherever the precondition holds and the transition is enabled, the
//! postcondition must hold in the successor. Violations panic with the
//! rule name; the returned statistics count non-vacuous instances so
//! callers can assert the rules actually fired.

use rc11_assert::dsl::*;
use rc11_assert::{EvalCtx, OpPat, Pred};
use rc11_check::{ExploreOptions, Explorer};
use rc11_core::{Combined, Tid};
use rc11_lang::machine::Config;
use rc11_lang::{CfgProgram, ObjRef, VarRef};
use rc11_objects::{lock, AbstractObjects};

/// A rule-check harness: a compiled program with its reachable
/// configurations and the lock/variable under scrutiny.
pub struct RuleHarness {
    /// The compiled program.
    pub prog: CfgProgram,
    /// Every reachable canonical configuration.
    pub configs: Vec<Config>,
    /// The abstract lock.
    pub l: ObjRef,
    /// A client variable written under the lock.
    pub x: VarRef,
}

impl RuleHarness {
    /// Build a harness by exhausting `prog`'s state space.
    pub fn new(prog: CfgProgram, l: ObjRef, x: VarRef) -> RuleHarness {
        let mut configs = Vec::new();
        let report = Explorer::new(&prog, &AbstractObjects)
            .with_options(ExploreOptions { record_traces: false, ..Default::default() })
            .explore_with(|cfg, _| {
                configs.push(cfg.clone());
            });
        assert!(!report.truncated(), "harness exploration truncated");
        RuleHarness { prog, configs, l, x }
    }
}

/// Instance counts per rule (all non-vacuous applications checked).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Instances of rule (1).
    pub r1: usize,
    /// Instances of rule (2).
    pub r2: usize,
    /// Instances of rule (3).
    pub r3: usize,
    /// Instances of rule (4).
    pub r4: usize,
    /// Instances of rule (5).
    pub r5: usize,
    /// Instances of rule (6).
    pub r6: usize,
}

impl RuleStats {
    /// Total instances across rules.
    pub fn total(&self) -> usize {
        self.r1 + self.r2 + self.r3 + self.r4 + self.r5 + self.r6
    }
}

const MAX_VERSION: u32 = 8;
const VALS: [i64; 4] = [0, 5, 6, 7];

fn holds(p: &Pred, prog: &CfgProgram, cfg: &Config) -> bool {
    p.eval(EvalCtx { prog, cfg })
}

fn with_mem(cfg: &Config, mem: Combined) -> Config {
    Config { pcs: cfg.pcs.clone(), locals: cfg.locals.clone(), mem }
}

/// Check all six rules over the harness; panics on the first violation.
pub fn check_all_rules(h: &RuleHarness) -> RuleStats {
    let mut s = RuleStats::default();
    let n = h.prog.n_threads();
    for cfg in &h.configs {
        for u in 0..MAX_VERSION {
            let hid = hidden(h.l, OpPat::Release(u));
            let hid_holds = holds(&hid, &h.prog, cfg);
            for t in 0..n {
                let tid = Tid(t as u8);
                // Rules (1) and (2): hidden releases.
                if hid_holds {
                    for (v, mem) in lock::acquire_steps(&cfg.mem, tid, h.l.loc) {
                        assert!(v > u + 1, "rule 1 violated: v={v}, u={u}");
                        s.r1 += 1;
                        assert!(
                            holds(&hid, &h.prog, &with_mem(cfg, mem)),
                            "rule 2 violated (acquire)"
                        );
                        s.r2 += 1;
                    }
                    for (_, mem) in lock::release_steps(&cfg.mem, tid, h.l.loc) {
                        assert!(
                            holds(&hid, &h.prog, &with_mem(cfg, mem)),
                            "rule 2 violated (release)"
                        );
                        s.r2 += 1;
                    }
                }
                // Rule (3): definite release yields next acquire.
                if holds(&dobs_op(t, h.l, OpPat::Release(u)), &h.prog, cfg) {
                    for (v, mem) in lock::acquire_steps(&cfg.mem, tid, h.l.loc) {
                        assert_eq!(v, u + 1, "rule 3 violated: version");
                        assert!(
                            holds(
                                &dobs_op(t, h.l, OpPat::Acquire(u + 1)),
                                &h.prog,
                                &with_mem(cfg, mem)
                            ),
                            "rule 3 violated: definite acquire"
                        );
                        s.r3 += 1;
                    }
                }
                // Rule (5): conditional observation becomes definite.
                for nv in VALS {
                    let pre = cond_obs_op(t, h.l, OpPat::Release(u), h.x, nv);
                    if holds(&pobs_op(t, h.l, OpPat::Release(u)), &h.prog, cfg)
                        && holds(&pre, &h.prog, cfg)
                    {
                        for (v, mem) in lock::acquire_steps(&cfg.mem, tid, h.l.loc) {
                            if v == u + 1 {
                                assert!(
                                    holds(&dobs(t, h.x, nv), &h.prog, &with_mem(cfg, mem)),
                                    "rule 5 violated"
                                );
                                s.r5 += 1;
                            }
                        }
                    }
                }
            }
        }
        // Rule (4): definite observations stable under other threads' lock ops.
        for val in VALS {
            for t in 0..n {
                let pre = dobs(t, h.x, val);
                if !holds(&pre, &h.prog, cfg) {
                    continue;
                }
                for t2 in 0..n {
                    if t2 == t {
                        continue;
                    }
                    let tid2 = Tid(t2 as u8);
                    for (_, mem) in lock::acquire_steps(&cfg.mem, tid2, h.l.loc)
                        .into_iter()
                        .chain(lock::release_steps(&cfg.mem, tid2, h.l.loc))
                    {
                        assert!(holds(&pre, &h.prog, &with_mem(cfg, mem)), "rule 4 violated");
                        s.r4 += 1;
                    }
                }
            }
        }
        // Rule (6): release publishes definite observations.
        for u in 1..MAX_VERSION {
            for v in VALS {
                for t in 0..n {
                    if !holds(&dobs(t, h.x, v), &h.prog, cfg) {
                        continue;
                    }
                    for t2 in 0..n {
                        if t2 == t
                            || holds(&pobs_op(t2, h.l, OpPat::Release(u)), &h.prog, cfg)
                        {
                            continue;
                        }
                        for (nn, mem) in lock::release_steps(&cfg.mem, Tid(t as u8), h.l.loc)
                        {
                            if nn != u {
                                continue;
                            }
                            assert!(
                                holds(
                                    &cond_obs_op(t2, h.l, OpPat::Release(u), h.x, v),
                                    &h.prog,
                                    &with_mem(cfg, mem)
                                ),
                                "rule 6 violated"
                            );
                            s.r6 += 1;
                        }
                    }
                }
            }
        }
    }
    s
}

/// The standard Lemma-3 harnesses: the Figure-7 client plus an
/// `n_threads`-way lock client.
pub fn standard_harnesses(n_threads: usize) -> Vec<RuleHarness> {
    use rc11_lang::builder::*;
    use rc11_lang::compile;

    let f7 = crate::figures::fig7();
    let h1 = RuleHarness::new(compile(&f7.prog), f7.l, f7.d1);

    let mut p = ProgramBuilder::new(format!("lemma3-{n_threads}t"));
    let x = p.client_var("x", 0);
    let l = p.lock("l");
    for i in 0..n_threads {
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([acquire(l), wr(x, 5 + i as i64), release(l)]));
    }
    let h2 = RuleHarness::new(compile(&p.build()), l, x);
    vec![h1, h2]
}
