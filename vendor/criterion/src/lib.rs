//! Offline shim for `criterion`: the macro/group/bencher subset the
//! workspace's benches use. Measures wall-clock mean and min over a fixed
//! iteration budget and prints one line per benchmark — no statistical
//! analysis, no HTML reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-value hint, re-routed to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn humanize(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
    min: Duration,
}

impl Bencher {
    /// Times `routine`, keeping per-iteration mean and min.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
        }
    }
}

/// A benchmark identifier: function name plus optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded but only echoed in the report line).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The benchmark-name filter, like real criterion's CLI: the first
/// non-flag argument is a substring filter; benchmarks whose full path
/// does not contain it are skipped (`cargo bench -- some_group`).
fn name_filter() -> Option<&'static str> {
    static FILTER: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

/// Would the active name filter select benchmarks under `prefix` (a group
/// name or path prefix)? Bench files use this to skip expensive setup and
/// side-effect blocks (result recording, custom sweeps) whose group was
/// filtered out — the filter in [`name_filter`] only gates the timed
/// benchmarks themselves. True when no filter is set, when the prefix
/// contains the filter, or when the filter names a path under the prefix.
pub fn selected(prefix: &str) -> bool {
    match name_filter() {
        None => true,
        Some(f) => prefix.contains(f) || f.starts_with(prefix),
    }
}

fn run_one(path: &str, sample_size: usize, throughput: Option<&Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(filter) = name_filter() {
        if !path.contains(filter) {
            return;
        }
    }
    // One untimed warmup call, then the measured batch.
    let mut warmup = Bencher { iters: 1, total: Duration::ZERO, min: Duration::MAX };
    f(&mut warmup);
    let mut b = Bencher { iters: sample_size as u64, total: Duration::ZERO, min: Duration::MAX };
    f(&mut b);
    let iters = b.iters.max(1);
    let mean = b.total / iters as u32;
    let thr = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = *n as f64 / mean.as_secs_f64();
            format!(", {per_sec:.0} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = *n as f64 / mean.as_secs_f64();
            format!(", {per_sec:.0} B/s")
        }
        None => String::new(),
    };
    println!(
        "bench {path}: mean {}/iter (min {}, {iters} iters{thr})",
        humanize(mean),
        humanize(b.min),
    );
}

/// The benchmark driver; one per `criterion_group!` run.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Criterion {
        run_one(name, DEFAULT_SAMPLE_SIZE, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let path = format!("{}/{}", self.name, id.into().id);
        run_one(&path, self.sample_size, self.throughput.as_ref(), &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let path = format!("{}/{}", self.name, id.into().id);
        run_one(&path, self.sample_size, self.throughput.as_ref(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("unit", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("inner", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        // warmup (1) + measured (3)
        assert_eq!(ran, 4);
    }
}
