//! Offline shim for `crossbeam`: scoped threads over `std::thread::scope`
//! and a mutex-backed `deque::Injector`. Only the subset the workspace's
//! parallel explorer uses.

#![warn(missing_docs)]

/// Work-queue types mirroring `crossbeam::deque`.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Result of a steal attempt.
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The attempt lost a race; try again.
        Retry,
    }

    /// A FIFO injector queue shared by all workers.
    ///
    /// The real crossbeam injector is lock-free; this shim serialises
    /// through a mutex, which is contended but correct — the parallel
    /// explorer's scaling benches measure the real crate, not this shim.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Injector<T> {
            Injector { q: Mutex::new(VecDeque::new()) }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.q.lock().unwrap_or_else(|e| e.into_inner()).push_back(task);
        }

        /// Steals a task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap_or_else(|e| e.into_inner()).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True iff the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Injector<T> {
            Injector::new()
        }
    }
}

/// A scope handle passed to [`scope`] closures; spawns scoped workers.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives a copy of the scope so
    /// it can spawn further threads (crossbeam's signature).
    pub fn spawn<T, F>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(scope))
    }
}

/// Creates a scope in which threads borrowing from the environment can be
/// spawned; joins them all before returning. Unlike crossbeam, a panicking
/// worker propagates its panic when the scope joins (the `Result` is kept
/// for signature compatibility and is always `Ok`).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_workers_drain_injector() {
        let inj: Injector<usize> = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let sum = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| loop {
                    match inj.steal() {
                        Steal::Success(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        Steal::Retry => {}
                        Steal::Empty => break,
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(sum.into_inner(), (0..100).sum());
    }
}
