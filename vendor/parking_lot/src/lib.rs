//! Offline shim for `parking_lot`: the `Mutex`/`RwLock` subset the
//! workspace uses, implemented over `std::sync` with poison errors
//! converted into plain guards (parking_lot has no poisoning).

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// A reader–writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
