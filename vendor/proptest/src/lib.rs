//! Offline shim for `proptest`: the generation-only subset the workspace's
//! property tests use — `proptest!`, `prop_oneof!`, `prop_assert*!`,
//! [`Strategy`] with `prop_map`, integer-range/tuple/`any::<bool>()`
//! strategies and [`collection::vec`]. Cases are generated from a
//! deterministic per-test seed; failing inputs are reported via panic
//! message. **No shrinking** — the failing case is printed as generated.

#![warn(missing_docs)]

use std::marker::PhantomData;

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test name, so each test gets a stable
    /// but distinct sequence across runs.
    pub fn deterministic(test_name: &str) -> TestRng {
        // FNV-1a over the name picks the stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot draw from an empty range");
        self.next_u64() % n
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        (**self).gen_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<V> {
    branches: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.branches.len() as u64) as usize;
        self.branches[k].gen_value(rng)
    }
}

/// Builds a [`Union`]; used by the `prop_oneof!` macro expansion.
pub fn union_of<V>(branches: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
    assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
    Union { branches }
}

/// Boxes a strategy for use in a [`Union`]; used by `prop_oneof!`.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range strategy");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// A vector of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The common imports: strategies, config, and the macros.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` (strategy submodules).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases. Failing
/// inputs are printed before the panic propagates; there is no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                // Snapshot the rng so the failing case's inputs can be
                // regenerated for the report — passing cases pay no
                // formatting cost.
                let __rng_snapshot = __rng.clone();
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || { $body }));
                if let Err(__panic) = __outcome {
                    let mut __replay = __rng_snapshot;
                    let mut __inputs = String::new();
                    $({
                        let __v = $crate::Strategy::gen_value(&($strat), &mut __replay);
                        __inputs.push_str(&format!("  {} = {:?}\n", stringify!($arg), __v));
                    })+
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs:\n{}(no shrinking — offline shim)",
                        stringify!($name), __case + 1, __config.cases, __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

/// A uniform choice among strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union_of(vec![$($crate::boxed($strat)),+])
    };
}

/// `assert!` under proptest's name (no early-return semantics needed here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds; tuples and vec compose.
        #[test]
        fn ranges_and_collections(
            x in 1u8..5,
            t in (0u8..=255, 0usize..10),
            v in prop::collection::vec(0u8..4, 0..8),
        ) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(t.1 < 10);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        /// prop_oneof and prop_map produce every branch.
        #[test]
        fn oneof_and_map(
            v in prop::collection::vec(
                prop_oneof![
                    (0u8..1).prop_map(|_| 0usize),
                    (0u8..1).prop_map(|_| 1usize),
                    any::<bool>().prop_map(|b| 2 + b as usize),
                ],
                64..65,
            )
        ) {
            prop_assert!(v.iter().all(|&e| e <= 3));
            for branch in 0..4 {
                prop_assert!(v.contains(&branch), "branch {} never generated", branch);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
