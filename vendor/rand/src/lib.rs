//! Offline shim for `rand`: `StdRng`/`SeedableRng`/`Rng::gen_range` over a
//! SplitMix64 generator. Deterministic per seed (the only property the
//! workspace's samplers rely on); sequences differ from upstream `rand`.

#![warn(missing_docs)]

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard RNG: here, SplitMix64 (upstream uses ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniformly distributed value from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Value generation, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized;
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<usize> = (0..100).map(|_| a.gen_range(0..10usize)).collect();
        let ys: Vec<usize> = (0..100).map(|_| b.gen_range(0..10usize)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&x| x < 10));
        // All residues show up over 100 draws.
        for v in 0..10 {
            assert!(xs.contains(&v), "value {v} never drawn");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        let xs: Vec<u8> = (0..300).map(|_| r.gen_range(0u8..=255)).collect();
        assert!(xs.iter().any(|&x| x > 200));
        assert!(xs.iter().any(|&x| x < 50));
    }
}
